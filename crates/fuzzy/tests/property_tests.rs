//! Property-based tests for the fuzzy-logic core.

use fuzzy::prelude::*;
use proptest::prelude::*;

fn sorted3() -> impl Strategy<Value = (f64, f64, f64)> {
    (-1000.0f64..1000.0, 0.001f64..500.0, 0.001f64..500.0)
        .prop_map(|(b, w0, w1)| (b - w0, b, b + w1))
}

fn sorted4() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (
        -1000.0f64..1000.0,
        0.001f64..500.0,
        0.0f64..500.0,
        0.001f64..500.0,
    )
        .prop_map(|(b, w0, plateau, w1)| (b - w0, b, b + plateau, b + plateau + w1))
}

proptest! {
    #[test]
    fn triangular_membership_is_bounded((a, b, c) in sorted3(), x in -2000.0f64..2000.0) {
        let mf = MembershipFunction::triangular(a, b, c).unwrap();
        let mu = mf.membership(x);
        prop_assert!((0.0..=1.0).contains(&mu));
    }

    #[test]
    fn triangular_peak_is_one((a, b, c) in sorted3()) {
        let mf = MembershipFunction::triangular(a, b, c).unwrap();
        prop_assert!((mf.membership(b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangular_zero_outside_support((a, b, c) in sorted3(), delta in 0.001f64..1000.0) {
        let mf = MembershipFunction::triangular(a, b, c).unwrap();
        prop_assert_eq!(mf.membership(a - delta), 0.0);
        prop_assert_eq!(mf.membership(c + delta), 0.0);
    }

    #[test]
    fn triangular_monotone_on_each_side((a, b, c) in sorted3(), t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        let mf = MembershipFunction::triangular(a, b, c).unwrap();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        // rising edge
        let x1 = a + lo * (b - a);
        let x2 = a + hi * (b - a);
        prop_assert!(mf.membership(x1) <= mf.membership(x2) + 1e-9);
        // falling edge
        let y1 = b + lo * (c - b);
        let y2 = b + hi * (c - b);
        prop_assert!(mf.membership(y1) + 1e-9 >= mf.membership(y2));
    }

    #[test]
    fn trapezoidal_membership_is_bounded((a, b, c, d) in sorted4(), x in -2000.0f64..2000.0) {
        let mf = MembershipFunction::trapezoidal(a, b, c, d).unwrap();
        let mu = mf.membership(x);
        prop_assert!((0.0..=1.0).contains(&mu));
    }

    #[test]
    fn trapezoidal_plateau_is_one((a, b, c, d) in sorted4(), t in 0.0f64..1.0) {
        let mf = MembershipFunction::trapezoidal(a, b, c, d).unwrap();
        let x = b + t * (c - b);
        prop_assert!((mf.membership(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tnorm_never_exceeds_operands(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        for t in [TNorm::Minimum, TNorm::Product, TNorm::Lukasiewicz, TNorm::Drastic, TNorm::Hamacher] {
            let v = t.apply(a, b);
            prop_assert!(v <= a.min(b) + 1e-12);
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn snorm_never_below_operands(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        for s in [SNorm::Maximum, SNorm::ProbabilisticSum, SNorm::BoundedSum, SNorm::Drastic] {
            let v = s.apply(a, b);
            prop_assert!(v >= a.max(b) - 1e-12);
            prop_assert!(v <= 1.0);
        }
    }

    #[test]
    fn norm_duality_de_morgan(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        // min/max and product/probabilistic-sum are dual under complement:
        // S(a,b) = 1 - T(1-a, 1-b)
        let pairs = [
            (TNorm::Minimum, SNorm::Maximum),
            (TNorm::Product, SNorm::ProbabilisticSum),
            (TNorm::Lukasiewicz, SNorm::BoundedSum),
        ];
        for (t, s) in pairs {
            let lhs = s.apply(a, b);
            let rhs = 1.0 - t.apply(1.0 - a, 1.0 - b);
            prop_assert!((lhs - rhs).abs() < 1e-9, "{:?}/{:?}: {} vs {}", t, s, lhs, rhs);
        }
    }

    #[test]
    fn fuzzify_degrees_always_bounded(x in -500.0f64..500.0) {
        let v = LinguisticVariable::builder("speed", 0.0, 120.0)
            .triangle("Slow", 0.0, 0.0, 60.0)
            .triangle("Middle", 30.0, 60.0, 90.0)
            .trapezoid("Fast", 60.0, 120.0, 120.0, 120.0)
            .build()
            .unwrap();
        for mu in v.fuzzify(x) {
            prop_assert!((0.0..=1.0).contains(&mu));
        }
    }

    #[test]
    fn centroid_stays_inside_universe(peak in 0.05f64..0.95, height in 0.05f64..1.0) {
        let mf = MembershipFunction::triangular(peak - 0.05, peak, peak + 0.05).unwrap();
        let mut set = FuzzySet::empty(0.0, 1.0, 301).unwrap();
        set.aggregate_clipped(&mf, height, SNorm::Maximum);
        let c = Defuzzifier::Centroid.defuzzify(&set, "x").unwrap();
        prop_assert!((0.0..=1.0).contains(&c));
        // the centroid should be near the (symmetric) peak
        prop_assert!((c - peak).abs() < 0.05, "centroid {} vs peak {}", c, peak);
    }

    #[test]
    fn defuzzifiers_are_ordered_som_mom_lom(
        peak in 0.1f64..0.9,
        height in 0.1f64..0.9,
    ) {
        let mf = MembershipFunction::triangular((peak - 0.1).max(0.0), peak, (peak + 0.1).min(1.0)).unwrap();
        let mut set = FuzzySet::empty(0.0, 1.0, 501).unwrap();
        set.aggregate_clipped(&mf, height, SNorm::Maximum);
        let som = Defuzzifier::SmallestOfMaxima.defuzzify(&set, "x").unwrap();
        let mom = Defuzzifier::MeanOfMaxima.defuzzify(&set, "x").unwrap();
        let lom = Defuzzifier::LargestOfMaxima.defuzzify(&set, "x").unwrap();
        prop_assert!(som <= mom + 1e-9);
        prop_assert!(mom <= lom + 1e-9);
    }

    #[test]
    fn engine_output_always_within_output_universe(t in 0.0f64..40.0, h in 0.0f64..100.0) {
        let temperature = LinguisticVariable::builder("temperature", 0.0, 40.0)
            .triangle("Cold", 0.0, 0.0, 20.0)
            .triangle("Warm", 10.0, 20.0, 30.0)
            .triangle("Hot", 20.0, 40.0, 40.0)
            .build()
            .unwrap();
        let humidity = LinguisticVariable::builder("humidity", 0.0, 100.0)
            .triangle("Dry", 0.0, 0.0, 50.0)
            .triangle("Humid", 50.0, 100.0, 100.0)
            .build()
            .unwrap();
        let fan = LinguisticVariable::builder("fan", 0.0, 100.0)
            .triangle("Slow", 0.0, 0.0, 50.0)
            .triangle("Medium", 25.0, 50.0, 75.0)
            .triangle("Fast", 50.0, 100.0, 100.0)
            .build()
            .unwrap();
        let mut e = MamdaniEngine::builder()
            .input(temperature)
            .input(humidity)
            .output(fan)
            .build()
            .unwrap();
        e.add_rules_str([
            "IF temperature IS Hot AND humidity IS Humid THEN fan IS Fast",
            "IF temperature IS Hot AND humidity IS Dry THEN fan IS Medium",
            "IF temperature IS Warm THEN fan IS Medium",
            "IF temperature IS Cold THEN fan IS Slow",
        ]).unwrap();
        let out = e.infer(&[t, h]).unwrap();
        let fan_speed = out.crisp_or("fan", 50.0);
        prop_assert!((0.0..=100.0).contains(&fan_speed));
    }

    #[test]
    fn rule_display_parse_roundtrip(
        var_idx in 0usize..3,
        term_idx in 0usize..3,
        out_idx in 0usize..3,
        negated in proptest::bool::ANY,
    ) {
        let vars = ["Sp", "An", "Sr"];
        let terms = ["Low", "Mid", "High"];
        let outs = ["Cv1", "Cv5", "Cv9"];
        let a = if negated {
            Antecedent::is_not(vars[var_idx], terms[term_idx])
        } else {
            Antecedent::is(vars[var_idx], terms[term_idx])
        };
        let rule = Rule::new(vec![a], Connective::And,
            vec![fuzzy::rule::Consequent::is("Cv", outs[out_idx])]).unwrap();
        let reparsed = Rule::parse(&rule.to_string()).unwrap();
        prop_assert_eq!(rule, reparsed);
    }

    #[test]
    fn fuzzy_set_area_matches_height_bound(height in 0.0f64..=1.0) {
        let mf = MembershipFunction::trapezoidal(0.0, 0.2, 0.8, 1.0).unwrap();
        let mut set = FuzzySet::empty(0.0, 1.0, 401).unwrap();
        set.aggregate_clipped(&mf, height, SNorm::Maximum);
        // area can never exceed height * width of universe
        prop_assert!(set.area() <= height * 1.0 + 1e-9);
    }

    #[test]
    fn compiled_engine_is_bit_identical_to_interpreted(
        t in 0.0f64..=40.0,
        h in 0.0f64..=100.0,
    ) {
        let temperature = LinguisticVariable::builder("temperature", 0.0, 40.0)
            .triangle("Cold", 0.0, 0.0, 20.0)
            .triangle("Warm", 10.0, 20.0, 30.0)
            .triangle("Hot", 20.0, 40.0, 40.0)
            .build()
            .unwrap();
        let humidity = LinguisticVariable::builder("humidity", 0.0, 100.0)
            .triangle("Dry", 0.0, 0.0, 50.0)
            .triangle("Humid", 50.0, 100.0, 100.0)
            .build()
            .unwrap();
        let fan = LinguisticVariable::builder("fan", 0.0, 100.0)
            .triangle("Slow", 0.0, 0.0, 50.0)
            .triangle("Medium", 25.0, 50.0, 75.0)
            .triangle("Fast", 50.0, 100.0, 100.0)
            .build()
            .unwrap();
        let mut e = MamdaniEngine::builder()
            .input(temperature)
            .input(humidity)
            .output(fan)
            .build()
            .unwrap();
        e.add_rules_str([
            "IF temperature IS Hot AND humidity IS Humid THEN fan IS Fast",
            "IF temperature IS Hot AND humidity IS Dry THEN fan IS Medium",
            "IF temperature IS Warm THEN fan IS Medium",
            "IF temperature IS Cold THEN fan IS Slow",
        ]).unwrap();
        let compiled = e.compile().unwrap();
        let mut scratch = compiled.scratch();
        let fast = compiled.infer_into(&[t, h], &mut scratch)[0];
        let reference = e.infer(&[t, h]).unwrap().crisp_or("fan", 50.0);
        prop_assert_eq!(fast.to_bits(), reference.to_bits());
    }
}
