//! Triangular norms (t-norms) and co-norms (s-norms).
//!
//! The AND of rule antecedents is computed with a [`TNorm`] and the OR /
//! aggregation of rule consequents with an [`SNorm`].  The paper's FLCs use
//! the classical Mamdani pair (minimum / maximum); the product / probabilistic
//! sum pair is provided for the ablation experiments.

use serde::{Deserialize, Serialize};

use crate::clamp_degree;

/// A triangular norm: the fuzzy generalisation of logical AND.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TNorm {
    /// Gödel / Mamdani minimum: `min(a, b)`.
    #[default]
    Minimum,
    /// Algebraic product: `a * b`.
    Product,
    /// Łukasiewicz (bounded difference): `max(0, a + b - 1)`.
    Lukasiewicz,
    /// Drastic product: `min(a, b)` if `max(a, b) == 1`, else 0.
    Drastic,
    /// Hamacher product: `a b / (a + b - a b)` (0 when both are 0).
    Hamacher,
}

impl TNorm {
    /// Combine two membership degrees.
    #[must_use]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        let a = clamp_degree(a);
        let b = clamp_degree(b);
        let v = match self {
            TNorm::Minimum => a.min(b),
            TNorm::Product => a * b,
            TNorm::Lukasiewicz => (a + b - 1.0).max(0.0),
            TNorm::Drastic => {
                if a == 1.0 {
                    b
                } else if b == 1.0 {
                    a
                } else {
                    0.0
                }
            }
            TNorm::Hamacher => {
                let denom = a + b - a * b;
                if denom == 0.0 {
                    0.0
                } else {
                    (a * b) / denom
                }
            }
        };
        clamp_degree(v)
    }

    /// Fold a slice of degrees with this t-norm.
    ///
    /// The identity element of every t-norm is 1, so an empty slice yields 1.
    #[must_use]
    pub fn fold(self, degrees: &[f64]) -> f64 {
        degrees.iter().fold(1.0, |acc, &d| self.apply(acc, d))
    }
}

/// A triangular co-norm: the fuzzy generalisation of logical OR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SNorm {
    /// Gödel / Mamdani maximum: `max(a, b)`.
    #[default]
    Maximum,
    /// Probabilistic (algebraic) sum: `a + b - a b`.
    ProbabilisticSum,
    /// Łukasiewicz (bounded sum): `min(1, a + b)`.
    BoundedSum,
    /// Drastic sum: `max(a, b)` if `min(a, b) == 0`, else 1.
    Drastic,
}

impl SNorm {
    /// Combine two membership degrees.
    #[must_use]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        let a = clamp_degree(a);
        let b = clamp_degree(b);
        let v = match self {
            SNorm::Maximum => a.max(b),
            SNorm::ProbabilisticSum => a + b - a * b,
            SNorm::BoundedSum => (a + b).min(1.0),
            SNorm::Drastic => {
                if a == 0.0 {
                    b
                } else if b == 0.0 {
                    a
                } else {
                    1.0
                }
            }
        };
        clamp_degree(v)
    }

    /// Fold a slice of degrees with this s-norm.
    ///
    /// The identity element of every s-norm is 0, so an empty slice yields 0.
    #[must_use]
    pub fn fold(self, degrees: &[f64]) -> f64 {
        degrees.iter().fold(0.0, |acc, &d| self.apply(acc, d))
    }
}

/// Standard fuzzy complement `1 - a`.
#[inline]
#[must_use]
pub fn complement(a: f64) -> f64 {
    clamp_degree(1.0 - clamp_degree(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    const NORMS: [TNorm; 5] = [
        TNorm::Minimum,
        TNorm::Product,
        TNorm::Lukasiewicz,
        TNorm::Drastic,
        TNorm::Hamacher,
    ];
    const CONORMS: [SNorm; 4] = [
        SNorm::Maximum,
        SNorm::ProbabilisticSum,
        SNorm::BoundedSum,
        SNorm::Drastic,
    ];

    #[test]
    fn tnorm_boundary_conditions() {
        // T(a, 1) = a and T(a, 0) = 0 for every t-norm.
        for t in NORMS {
            for a in [0.0, 0.25, 0.5, 0.75, 1.0] {
                assert!((t.apply(a, 1.0) - a).abs() < 1e-12, "{t:?} T({a},1)");
                assert_eq!(t.apply(a, 0.0), 0.0, "{t:?} T({a},0)");
            }
        }
    }

    #[test]
    fn snorm_boundary_conditions() {
        // S(a, 0) = a and S(a, 1) = 1 for every s-norm.
        for s in CONORMS {
            for a in [0.0, 0.25, 0.5, 0.75, 1.0] {
                assert!((s.apply(a, 0.0) - a).abs() < 1e-12, "{s:?} S({a},0)");
                assert_eq!(s.apply(a, 1.0), 1.0, "{s:?} S({a},1)");
            }
        }
    }

    #[test]
    fn norms_are_commutative() {
        let samples = [0.0, 0.1, 0.33, 0.5, 0.9, 1.0];
        for t in NORMS {
            for &a in &samples {
                for &b in &samples {
                    assert!((t.apply(a, b) - t.apply(b, a)).abs() < 1e-12);
                }
            }
        }
        for s in CONORMS {
            for &a in &samples {
                for &b in &samples {
                    assert!((s.apply(a, b) - s.apply(b, a)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn tnorm_below_min_snorm_above_max() {
        let samples = [0.0, 0.2, 0.41, 0.77, 1.0];
        for t in NORMS {
            for &a in &samples {
                for &b in &samples {
                    assert!(t.apply(a, b) <= a.min(b) + 1e-12, "{t:?}");
                }
            }
        }
        for s in CONORMS {
            for &a in &samples {
                for &b in &samples {
                    assert!(s.apply(a, b) >= a.max(b) - 1e-12, "{s:?}");
                }
            }
        }
    }

    #[test]
    fn specific_values() {
        assert_eq!(TNorm::Minimum.apply(0.3, 0.7), 0.3);
        assert!((TNorm::Product.apply(0.3, 0.7) - 0.21).abs() < 1e-12);
        assert!((TNorm::Lukasiewicz.apply(0.3, 0.7) - 0.0).abs() < 1e-12);
        assert!((TNorm::Lukasiewicz.apply(0.6, 0.7) - 0.3).abs() < 1e-12);
        assert_eq!(SNorm::Maximum.apply(0.3, 0.7), 0.7);
        assert!((SNorm::ProbabilisticSum.apply(0.3, 0.7) - 0.79).abs() < 1e-12);
        assert_eq!(SNorm::BoundedSum.apply(0.6, 0.7), 1.0);
    }

    #[test]
    fn fold_identities() {
        assert_eq!(TNorm::Minimum.fold(&[]), 1.0);
        assert_eq!(SNorm::Maximum.fold(&[]), 0.0);
        assert_eq!(TNorm::Minimum.fold(&[0.4, 0.9, 0.6]), 0.4);
        assert_eq!(SNorm::Maximum.fold(&[0.4, 0.9, 0.6]), 0.9);
    }

    #[test]
    fn inputs_are_clamped() {
        assert_eq!(TNorm::Minimum.apply(2.0, 0.5), 0.5);
        assert_eq!(SNorm::Maximum.apply(-1.0, 0.5), 0.5);
        assert_eq!(TNorm::Product.apply(f64::NAN, 0.5), 0.0);
    }

    #[test]
    fn complement_involution_on_grid() {
        for a in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!((complement(complement(a)) - a).abs() < 1e-12);
        }
        assert_eq!(complement(1.2), 0.0);
    }

    #[test]
    fn hamacher_zero_zero() {
        assert_eq!(TNorm::Hamacher.apply(0.0, 0.0), 0.0);
    }
}
