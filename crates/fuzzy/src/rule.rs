//! Fuzzy rules and rule bases.
//!
//! Rules are of the Mamdani form used by the paper:
//!
//! ```text
//! IF Sp IS Slow AND An IS Straight AND Sr IS Small THEN Cv IS Cv5
//! ```
//!
//! Rules can be built programmatically ([`Rule::new`]) or parsed from text
//! ([`Rule::parse`]).  A [`RuleBase`] owns an ordered collection of rules and
//! can verify them against the engine's declared variables.

use crate::error::{FuzzyError, Result};
use crate::variable::LinguisticVariable;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the antecedent clauses of a rule are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Connective {
    /// All clauses must hold (combined with the engine's t-norm).
    #[default]
    And,
    /// Any clause may hold (combined with the engine's s-norm).
    Or,
}

/// One antecedent clause: `<variable> IS <term>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Antecedent {
    /// Name of the input linguistic variable.
    pub variable: String,
    /// Name of the term on that variable.
    pub term: String,
    /// If `true` the clause is negated (`IS NOT`).
    pub negated: bool,
}

impl Antecedent {
    /// A positive clause `<variable> IS <term>`.
    pub fn is(variable: impl Into<String>, term: impl Into<String>) -> Self {
        Self {
            variable: variable.into(),
            term: term.into(),
            negated: false,
        }
    }

    /// A negated clause `<variable> IS NOT <term>`.
    pub fn is_not(variable: impl Into<String>, term: impl Into<String>) -> Self {
        Self {
            variable: variable.into(),
            term: term.into(),
            negated: true,
        }
    }
}

impl fmt::Display for Antecedent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "{} IS NOT {}", self.variable, self.term)
        } else {
            write!(f, "{} IS {}", self.variable, self.term)
        }
    }
}

/// One consequent clause: `<output variable> IS <term>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Consequent {
    /// Name of the output linguistic variable.
    pub variable: String,
    /// Name of the term assigned by the rule.
    pub term: String,
}

impl Consequent {
    /// `<variable> IS <term>`.
    pub fn is(variable: impl Into<String>, term: impl Into<String>) -> Self {
        Self {
            variable: variable.into(),
            term: term.into(),
        }
    }
}

impl fmt::Display for Consequent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} IS {}", self.variable, self.term)
    }
}

/// A complete IF/THEN rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    antecedents: Vec<Antecedent>,
    connective: Connective,
    consequents: Vec<Consequent>,
    weight: f64,
    label: Option<String>,
}

impl Rule {
    /// Build a rule from parts. `weight` scales the rule's firing strength
    /// and must lie in `[0, 1]` (the paper's rules all have weight 1).
    pub fn new(
        antecedents: Vec<Antecedent>,
        connective: Connective,
        consequents: Vec<Consequent>,
    ) -> Result<Self> {
        if antecedents.is_empty() {
            return Err(FuzzyError::RuleParse {
                text: String::new(),
                reason: "a rule needs at least one antecedent".into(),
            });
        }
        if consequents.is_empty() {
            return Err(FuzzyError::RuleParse {
                text: String::new(),
                reason: "a rule needs at least one consequent".into(),
            });
        }
        Ok(Self {
            antecedents,
            connective,
            consequents,
            weight: 1.0,
            label: None,
        })
    }

    /// Attach a human-readable label (e.g. the FRB row number).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Scale the rule's firing strength by `weight ∈ [0, 1]`.
    pub fn with_weight(mut self, weight: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&weight) || weight.is_nan() {
            return Err(FuzzyError::RuleParse {
                text: self.to_string(),
                reason: format!("rule weight must be in [0,1], got {weight}"),
            });
        }
        self.weight = weight;
        Ok(self)
    }

    /// Parse a rule from text of the form
    /// `IF a IS x AND b IS NOT y THEN out IS z [AND out2 IS w]`.
    ///
    /// Keywords are case-insensitive; variable and term names are
    /// case-sensitive.  `AND`/`OR` may not be mixed within one antecedent.
    pub fn parse(text: &str) -> Result<Self> {
        let err = |reason: &str| FuzzyError::RuleParse {
            text: text.to_string(),
            reason: reason.to_string(),
        };
        let tokens: Vec<&str> = text.split_whitespace().collect();
        if tokens.is_empty() {
            return Err(err("empty rule"));
        }
        if !tokens[0].eq_ignore_ascii_case("if") {
            return Err(err("rule must start with IF"));
        }
        let then_pos = tokens
            .iter()
            .position(|t| t.eq_ignore_ascii_case("then"))
            .ok_or_else(|| err("missing THEN"))?;
        if then_pos + 1 >= tokens.len() {
            return Err(err("missing consequent after THEN"));
        }

        let (antecedents, connective) = parse_clauses(&tokens[1..then_pos], text, true)?;
        let (consequent_clauses, _) = parse_clauses(&tokens[then_pos + 1..], text, false)?;

        let antecedents: Vec<Antecedent> = antecedents;
        let consequents: Vec<Consequent> = consequent_clauses
            .into_iter()
            .map(|a| {
                if a.negated {
                    Err(err("consequents may not be negated"))
                } else {
                    Ok(Consequent {
                        variable: a.variable,
                        term: a.term,
                    })
                }
            })
            .collect::<Result<_>>()?;

        Rule::new(antecedents, connective, consequents)
    }

    /// The antecedent clauses.
    #[must_use]
    pub fn antecedents(&self) -> &[Antecedent] {
        &self.antecedents
    }

    /// How the antecedents are combined.
    #[must_use]
    pub fn connective(&self) -> Connective {
        self.connective
    }

    /// The consequent clauses.
    #[must_use]
    pub fn consequents(&self) -> &[Consequent] {
        &self.consequents
    }

    /// The rule weight in `[0, 1]`.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Optional label.
    #[must_use]
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Verify that every referenced variable/term exists in the provided
    /// input and output variable lists.
    pub fn validate(
        &self,
        inputs: &[LinguisticVariable],
        outputs: &[LinguisticVariable],
    ) -> Result<()> {
        for a in &self.antecedents {
            let var = inputs
                .iter()
                .find(|v| v.name() == a.variable)
                .ok_or_else(|| FuzzyError::UnknownVariable {
                    name: a.variable.clone(),
                })?;
            if var.term(&a.term).is_none() {
                return Err(FuzzyError::UnknownTerm {
                    variable: a.variable.clone(),
                    term: a.term.clone(),
                });
            }
        }
        for c in &self.consequents {
            let var = outputs
                .iter()
                .find(|v| v.name() == c.variable)
                .ok_or_else(|| FuzzyError::UnknownVariable {
                    name: c.variable.clone(),
                })?;
            if var.term(&c.term).is_none() {
                return Err(FuzzyError::UnknownTerm {
                    variable: c.variable.clone(),
                    term: c.term.clone(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let conn = match self.connective {
            Connective::And => " AND ",
            Connective::Or => " OR ",
        };
        write!(f, "IF ")?;
        for (i, a) in self.antecedents.iter().enumerate() {
            if i > 0 {
                write!(f, "{conn}")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " THEN ")?;
        for (i, c) in self.consequents.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Parse `a IS x AND b IS NOT y ...` token runs into clauses.
fn parse_clauses(
    tokens: &[&str],
    full_text: &str,
    allow_or: bool,
) -> Result<(Vec<Antecedent>, Connective)> {
    let err = |reason: String| FuzzyError::RuleParse {
        text: full_text.to_string(),
        reason,
    };
    let mut clauses = Vec::new();
    let mut connective: Option<Connective> = None;
    let mut i = 0usize;
    while i < tokens.len() {
        if !clauses.is_empty() {
            let conn_tok = tokens[i];
            let conn = if conn_tok.eq_ignore_ascii_case("and") {
                Connective::And
            } else if conn_tok.eq_ignore_ascii_case("or") {
                if !allow_or {
                    return Err(err("OR is not allowed between consequents".into()));
                }
                Connective::Or
            } else {
                return Err(err(format!("expected AND/OR, found `{conn_tok}`")));
            };
            match connective {
                None => connective = Some(conn),
                Some(existing) if existing != conn => {
                    return Err(err("mixing AND and OR in one rule is not supported".into()))
                }
                _ => {}
            }
            i += 1;
        }
        // <variable> IS [NOT] <term>
        if i + 2 > tokens.len() {
            return Err(err("truncated clause".into()));
        }
        let variable = tokens[i];
        if !tokens[i + 1].eq_ignore_ascii_case("is") {
            return Err(err(format!("expected IS after `{variable}`")));
        }
        let (negated, term_idx) =
            if i + 2 < tokens.len() && tokens[i + 2].eq_ignore_ascii_case("not") {
                (true, i + 3)
            } else {
                (false, i + 2)
            };
        if term_idx >= tokens.len() {
            return Err(err(format!("missing term after `{variable} IS`")));
        }
        let term = tokens[term_idx];
        clauses.push(Antecedent {
            variable: variable.to_string(),
            term: term.to_string(),
            negated,
        });
        i = term_idx + 1;
    }
    if clauses.is_empty() {
        return Err(err("no clauses found".into()));
    }
    Ok((clauses, connective.unwrap_or_default()))
}

/// An ordered collection of rules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleBase {
    rules: Vec<Rule>,
}

impl RuleBase {
    /// An empty rule base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vector of rules.
    #[must_use]
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        Self { rules }
    }

    /// Add a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Add a rule parsed from text.
    pub fn push_str(&mut self, text: &str) -> Result<()> {
        self.rules.push(Rule::parse(text)?);
        Ok(())
    }

    /// The rules, in insertion order.
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` if the base holds no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Validate every rule against the declared variables.
    pub fn validate(
        &self,
        inputs: &[LinguisticVariable],
        outputs: &[LinguisticVariable],
    ) -> Result<()> {
        for r in &self.rules {
            r.validate(inputs, outputs)?;
        }
        Ok(())
    }

    /// Check completeness against a full cartesian grid of input terms:
    /// returns the input-term combinations (by name) that no rule covers.
    ///
    /// Only antecedents mentioning *all* inputs are considered covering for
    /// this check (the paper's FRBs enumerate the full grid).
    #[must_use]
    pub fn uncovered_combinations(&self, inputs: &[LinguisticVariable]) -> Vec<Vec<String>> {
        let mut uncovered = Vec::new();
        let mut indices = vec![0usize; inputs.len()];
        if inputs.is_empty() {
            return uncovered;
        }
        loop {
            let combo: Vec<String> = indices
                .iter()
                .zip(inputs)
                .map(|(&i, v)| v.terms()[i].name().to_string())
                .collect();
            let covered = self.rules.iter().any(|r| {
                inputs.iter().zip(&combo).all(|(v, term)| {
                    r.antecedents()
                        .iter()
                        .any(|a| !a.negated && a.variable == v.name() && &a.term == term)
                })
            });
            if !covered {
                uncovered.push(combo);
            }
            // advance the odometer
            let mut pos = inputs.len();
            loop {
                if pos == 0 {
                    return uncovered;
                }
                pos -= 1;
                indices[pos] += 1;
                if indices[pos] < inputs[pos].term_count() {
                    break;
                }
                indices[pos] = 0;
            }
        }
    }
}

impl FromIterator<Rule> for RuleBase {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        Self {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::LinguisticVariable;

    fn vars() -> (Vec<LinguisticVariable>, Vec<LinguisticVariable>) {
        let sp = LinguisticVariable::builder("Sp", 0.0, 120.0)
            .triangle("Sl", 0.0, 0.0, 60.0)
            .triangle("Fa", 60.0, 120.0, 120.0)
            .build()
            .unwrap();
        let cv = LinguisticVariable::builder("Cv", 0.0, 1.0)
            .triangle("Bad", 0.0, 0.0, 0.5)
            .triangle("Good", 0.5, 1.0, 1.0)
            .build()
            .unwrap();
        (vec![sp], vec![cv])
    }

    #[test]
    fn parse_simple_rule() {
        let r = Rule::parse("IF Sp IS Sl THEN Cv IS Bad").unwrap();
        assert_eq!(r.antecedents().len(), 1);
        assert_eq!(r.antecedents()[0], Antecedent::is("Sp", "Sl"));
        assert_eq!(r.consequents().len(), 1);
        assert_eq!(r.consequents()[0], Consequent::is("Cv", "Bad"));
        assert_eq!(r.connective(), Connective::And);
        assert_eq!(r.weight(), 1.0);
    }

    #[test]
    fn parse_multi_clause_and() {
        let r = Rule::parse("IF a IS x AND b IS y AND c IS z THEN o IS t").unwrap();
        assert_eq!(r.antecedents().len(), 3);
        assert_eq!(r.connective(), Connective::And);
    }

    #[test]
    fn parse_or_and_negation() {
        let r = Rule::parse("if a is x or b is not y then o is t").unwrap();
        assert_eq!(r.connective(), Connective::Or);
        assert!(r.antecedents()[1].negated);
    }

    #[test]
    fn parse_multiple_consequents() {
        let r = Rule::parse("IF a IS x THEN o IS t AND p IS u").unwrap();
        assert_eq!(r.consequents().len(), 2);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Rule::parse("").is_err());
        assert!(Rule::parse("WHEN a IS x THEN o IS t").is_err());
        assert!(Rule::parse("IF a IS x").is_err());
        assert!(Rule::parse("IF a IS THEN o IS t").is_err());
        assert!(Rule::parse("IF a x THEN o IS t").is_err());
        assert!(Rule::parse("IF a IS x THEN").is_err());
        assert!(Rule::parse("IF a IS x AND b IS y OR c IS z THEN o IS t").is_err());
        assert!(Rule::parse("IF a IS x THEN o IS NOT t").is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let original = Rule::parse("IF Sp IS Sl AND An IS St THEN Cv IS Cv5").unwrap();
        let reparsed = Rule::parse(&original.to_string()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn weight_validation() {
        let r = Rule::parse("IF a IS x THEN o IS t").unwrap();
        assert!(r.clone().with_weight(0.5).is_ok());
        assert!(r.clone().with_weight(-0.1).is_err());
        assert!(r.clone().with_weight(1.1).is_err());
        assert!(r.with_weight(f64::NAN).is_err());
    }

    #[test]
    fn label_is_kept() {
        let r = Rule::parse("IF a IS x THEN o IS t")
            .unwrap()
            .with_label("rule 7");
        assert_eq!(r.label(), Some("rule 7"));
    }

    #[test]
    fn validate_against_variables() {
        let (inputs, outputs) = vars();
        let good = Rule::parse("IF Sp IS Sl THEN Cv IS Bad").unwrap();
        assert!(good.validate(&inputs, &outputs).is_ok());

        let bad_var = Rule::parse("IF Speed IS Sl THEN Cv IS Bad").unwrap();
        assert!(matches!(
            bad_var.validate(&inputs, &outputs),
            Err(FuzzyError::UnknownVariable { .. })
        ));

        let bad_term = Rule::parse("IF Sp IS Ludicrous THEN Cv IS Bad").unwrap();
        assert!(matches!(
            bad_term.validate(&inputs, &outputs),
            Err(FuzzyError::UnknownTerm { .. })
        ));

        let bad_out = Rule::parse("IF Sp IS Sl THEN Cv IS Terrible").unwrap();
        assert!(matches!(
            bad_out.validate(&inputs, &outputs),
            Err(FuzzyError::UnknownTerm { .. })
        ));
    }

    #[test]
    fn rulebase_push_and_validate() {
        let (inputs, outputs) = vars();
        let mut rb = RuleBase::new();
        assert!(rb.is_empty());
        rb.push_str("IF Sp IS Sl THEN Cv IS Bad").unwrap();
        rb.push_str("IF Sp IS Fa THEN Cv IS Good").unwrap();
        assert_eq!(rb.len(), 2);
        assert!(rb.validate(&inputs, &outputs).is_ok());
    }

    #[test]
    fn rulebase_uncovered_combinations() {
        let (inputs, _) = vars();
        let mut rb = RuleBase::new();
        rb.push_str("IF Sp IS Sl THEN Cv IS Bad").unwrap();
        let uncovered = rb.uncovered_combinations(&inputs);
        assert_eq!(uncovered, vec![vec!["Fa".to_string()]]);
        rb.push_str("IF Sp IS Fa THEN Cv IS Good").unwrap();
        assert!(rb.uncovered_combinations(&inputs).is_empty());
    }

    #[test]
    fn rulebase_from_iterator() {
        let rules = vec![
            Rule::parse("IF a IS x THEN o IS t").unwrap(),
            Rule::parse("IF a IS y THEN o IS u").unwrap(),
        ];
        let rb: RuleBase = rules.clone().into_iter().collect();
        assert_eq!(rb.rules(), rules.as_slice());
    }

    #[test]
    fn rule_new_rejects_empty_parts() {
        assert!(Rule::new(vec![], Connective::And, vec![Consequent::is("o", "t")]).is_err());
        assert!(Rule::new(vec![Antecedent::is("a", "x")], Connective::And, vec![]).is_err());
    }
}
