//! Discretised fuzzy sets over a one-dimensional universe of discourse.
//!
//! During Mamdani inference each fired rule clips (or scales) its consequent
//! membership function; the clipped sets are aggregated into one output set
//! per output variable, which is then defuzzified.  [`FuzzySet`] is that
//! aggregated, sampled representation.

use crate::error::{FuzzyError, Result};
use crate::membership::MembershipFunction;
use crate::norms::SNorm;
use crate::{clamp_degree, DEFAULT_RESOLUTION};
use serde::{Deserialize, Serialize};

/// A fuzzy set sampled on a uniform grid over `[min, max]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzySet {
    min: f64,
    max: f64,
    degrees: Vec<f64>,
}

impl FuzzySet {
    /// An empty (all-zero) set over `[min, max]` sampled at `resolution`
    /// points (at least 2).
    pub fn empty(min: f64, max: f64, resolution: usize) -> Result<Self> {
        if !(min.is_finite() && max.is_finite()) || min >= max {
            return Err(FuzzyError::InvalidUniverse {
                variable: "<anonymous set>".into(),
                min,
                max,
            });
        }
        let resolution = resolution.max(2);
        Ok(Self {
            min,
            max,
            degrees: vec![0.0; resolution],
        })
    }

    /// An empty set with the [`DEFAULT_RESOLUTION`].
    pub fn empty_default(min: f64, max: f64) -> Result<Self> {
        Self::empty(min, max, DEFAULT_RESOLUTION)
    }

    /// Sample a membership function over `[min, max]`.
    pub fn from_membership(
        mf: &MembershipFunction,
        min: f64,
        max: f64,
        resolution: usize,
    ) -> Result<Self> {
        let mut set = Self::empty(min, max, resolution)?;
        for i in 0..set.degrees.len() {
            let x = set.x_at(i);
            set.degrees[i] = mf.membership(x);
        }
        Ok(set)
    }

    /// Build a set from explicit samples (degrees are clamped to `[0,1]`).
    pub fn from_samples(min: f64, max: f64, samples: &[f64]) -> Result<Self> {
        if samples.len() < 2 {
            return Err(FuzzyError::InvalidMembership {
                reason: "a sampled fuzzy set needs at least 2 samples".into(),
            });
        }
        let mut set = Self::empty(min, max, samples.len())?;
        for (dst, &src) in set.degrees.iter_mut().zip(samples) {
            *dst = clamp_degree(src);
        }
        Ok(set)
    }

    /// Lower bound of the universe.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the universe.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Number of samples.
    #[must_use]
    pub fn resolution(&self) -> usize {
        self.degrees.len()
    }

    /// The sampled membership degrees.
    #[must_use]
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }

    /// The `x` coordinate of sample `i`.
    #[must_use]
    pub fn x_at(&self, i: usize) -> f64 {
        let n = self.degrees.len();
        debug_assert!(i < n);
        self.min + (self.max - self.min) * (i as f64) / ((n - 1) as f64)
    }

    /// Membership degree at an arbitrary `x`, linearly interpolated between
    /// samples; 0 outside the universe.
    #[must_use]
    pub fn membership(&self, x: f64) -> f64 {
        if !x.is_finite() || x < self.min || x > self.max {
            return 0.0;
        }
        let n = self.degrees.len();
        let t = (x - self.min) / (self.max - self.min) * ((n - 1) as f64);
        let lo = t.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = t - lo as f64;
        clamp_degree(self.degrees[lo] * (1.0 - frac) + self.degrees[hi] * frac)
    }

    /// Merge another sampled membership function into this set, clipped at
    /// `height`, combining point-wise with `snorm`.  This is the Mamdani
    /// "clip and aggregate" step.
    pub fn aggregate_clipped(&mut self, mf: &MembershipFunction, height: f64, snorm: SNorm) {
        let height = clamp_degree(height);
        if height == 0.0 {
            return;
        }
        for i in 0..self.degrees.len() {
            let x = self.x_at(i);
            let clipped = mf.membership(x).min(height);
            self.degrees[i] = snorm.apply(self.degrees[i], clipped);
        }
    }

    /// Merge another sampled membership function into this set, *scaled* by
    /// `height` (product implication), combining point-wise with `snorm`.
    pub fn aggregate_scaled(&mut self, mf: &MembershipFunction, height: f64, snorm: SNorm) {
        let height = clamp_degree(height);
        if height == 0.0 {
            return;
        }
        for i in 0..self.degrees.len() {
            let x = self.x_at(i);
            let scaled = mf.membership(x) * height;
            self.degrees[i] = snorm.apply(self.degrees[i], scaled);
        }
    }

    /// Point-wise union (max) with another set over the same universe.
    ///
    /// # Panics
    /// Panics in debug builds if the universes or resolutions differ.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        self.zip_with(other, f64::max)
    }

    /// Point-wise intersection (min) with another set over the same universe.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        self.zip_with(other, f64::min)
    }

    /// Point-wise standard complement `1 - μ`.
    #[must_use]
    pub fn complement(&self) -> Self {
        let mut out = self.clone();
        for d in &mut out.degrees {
            *d = clamp_degree(1.0 - *d);
        }
        out
    }

    fn zip_with(&self, other: &Self, f: impl Fn(f64, f64) -> f64) -> Self {
        debug_assert_eq!(self.min, other.min);
        debug_assert_eq!(self.max, other.max);
        debug_assert_eq!(self.degrees.len(), other.degrees.len());
        let mut out = self.clone();
        for (d, &o) in out.degrees.iter_mut().zip(&other.degrees) {
            *d = clamp_degree(f(*d, o));
        }
        out
    }

    /// The maximum membership degree of the set (its *height*).
    #[must_use]
    pub fn height(&self) -> f64 {
        self.degrees.iter().copied().fold(0.0, f64::max)
    }

    /// `true` if every sampled degree is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.degrees.iter().all(|&d| d == 0.0)
    }

    /// Area under the membership curve (trapezoidal rule).
    #[must_use]
    pub fn area(&self) -> f64 {
        let n = self.degrees.len();
        let dx = (self.max - self.min) / ((n - 1) as f64);
        let mut area = 0.0;
        for w in self.degrees.windows(2) {
            area += 0.5 * (w[0] + w[1]) * dx;
        }
        area
    }

    /// The alpha-cut of the set: the interval(s) where membership is at
    /// least `alpha`, returned as a list of `[lo, hi]` sample-aligned
    /// intervals.
    #[must_use]
    pub fn alpha_cut(&self, alpha: f64) -> Vec<(f64, f64)> {
        let alpha = clamp_degree(alpha);
        let mut intervals = Vec::new();
        let mut start: Option<usize> = None;
        for i in 0..self.degrees.len() {
            let above = self.degrees[i] >= alpha && (alpha > 0.0 || self.degrees[i] > 0.0);
            match (above, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    intervals.push((self.x_at(s), self.x_at(i - 1)));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            intervals.push((self.x_at(s), self.max));
        }
        intervals
    }

    /// Scale every degree by `factor` (clamped back into `[0,1]`).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        let mut out = self.clone();
        for d in &mut out.degrees {
            *d = clamp_degree(*d * factor);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipFunction;

    fn tri(a: f64, b: f64, c: f64) -> MembershipFunction {
        MembershipFunction::triangular(a, b, c).unwrap()
    }

    #[test]
    fn empty_set_properties() {
        let s = FuzzySet::empty(0.0, 1.0, 11).unwrap();
        assert_eq!(s.resolution(), 11);
        assert!(s.is_empty());
        assert_eq!(s.height(), 0.0);
        assert_eq!(s.area(), 0.0);
        assert_eq!(s.membership(0.5), 0.0);
    }

    #[test]
    fn empty_rejects_bad_universe() {
        assert!(FuzzySet::empty(1.0, 1.0, 10).is_err());
        assert!(FuzzySet::empty(2.0, 1.0, 10).is_err());
        assert!(FuzzySet::empty(f64::NAN, 1.0, 10).is_err());
    }

    #[test]
    fn resolution_is_clamped_to_two() {
        let s = FuzzySet::empty(0.0, 1.0, 0).unwrap();
        assert_eq!(s.resolution(), 2);
    }

    #[test]
    fn from_membership_samples_correctly() {
        let s = FuzzySet::from_membership(&tri(0.0, 5.0, 10.0), 0.0, 10.0, 101).unwrap();
        assert!((s.membership(5.0) - 1.0).abs() < 1e-9);
        assert!((s.membership(2.5) - 0.5).abs() < 1e-9);
        assert_eq!(s.membership(-1.0), 0.0);
        assert!((s.height() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_at_endpoints() {
        let s = FuzzySet::empty(2.0, 4.0, 5).unwrap();
        assert_eq!(s.x_at(0), 2.0);
        assert_eq!(s.x_at(4), 4.0);
        assert!((s.x_at(2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_samples_clamps() {
        let s = FuzzySet::from_samples(0.0, 1.0, &[0.0, 2.0, -1.0, 0.5]).unwrap();
        assert_eq!(s.degrees(), &[0.0, 1.0, 0.0, 0.5]);
        assert!(FuzzySet::from_samples(0.0, 1.0, &[0.5]).is_err());
    }

    #[test]
    fn aggregate_clipped_respects_height() {
        let mut s = FuzzySet::empty(0.0, 10.0, 101).unwrap();
        s.aggregate_clipped(&tri(0.0, 5.0, 10.0), 0.6, SNorm::Maximum);
        assert!((s.height() - 0.6).abs() < 1e-9);
        // Clipping at zero is a no-op.
        let mut s2 = FuzzySet::empty(0.0, 10.0, 101).unwrap();
        s2.aggregate_clipped(&tri(0.0, 5.0, 10.0), 0.0, SNorm::Maximum);
        assert!(s2.is_empty());
    }

    #[test]
    fn aggregate_scaled_scales_shape() {
        let mut s = FuzzySet::empty(0.0, 10.0, 101).unwrap();
        s.aggregate_scaled(&tri(0.0, 5.0, 10.0), 0.5, SNorm::Maximum);
        assert!((s.membership(5.0) - 0.5).abs() < 1e-9);
        assert!((s.membership(2.5) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn aggregation_takes_pointwise_max() {
        let mut s = FuzzySet::empty(0.0, 10.0, 201).unwrap();
        s.aggregate_clipped(&tri(0.0, 2.0, 4.0), 1.0, SNorm::Maximum);
        s.aggregate_clipped(&tri(6.0, 8.0, 10.0), 0.5, SNorm::Maximum);
        assert!((s.membership(2.0) - 1.0).abs() < 1e-9);
        assert!((s.membership(8.0) - 0.5).abs() < 1e-9);
        assert!(s.membership(5.0) < 0.3);
    }

    #[test]
    fn union_intersection_complement() {
        let a = FuzzySet::from_membership(&tri(0.0, 3.0, 6.0), 0.0, 10.0, 101).unwrap();
        let b = FuzzySet::from_membership(&tri(4.0, 7.0, 10.0), 0.0, 10.0, 101).unwrap();
        let u = a.union(&b);
        let i = a.intersection(&b);
        for x in [0.0, 2.5, 5.0, 7.5, 10.0] {
            assert!((u.membership(x) - a.membership(x).max(b.membership(x))).abs() < 1e-9);
            assert!((i.membership(x) - a.membership(x).min(b.membership(x))).abs() < 1e-9);
        }
        let c = a.complement();
        assert!((c.membership(3.0) - 0.0).abs() < 1e-9);
        assert!((c.membership(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn area_of_triangle() {
        // Triangle base 10, height 1 -> area 5.
        let s = FuzzySet::from_membership(&tri(0.0, 5.0, 10.0), 0.0, 10.0, 1001).unwrap();
        assert!((s.area() - 5.0).abs() < 0.01);
    }

    #[test]
    fn alpha_cut_intervals() {
        let s = FuzzySet::from_membership(&tri(0.0, 5.0, 10.0), 0.0, 10.0, 1001).unwrap();
        let cuts = s.alpha_cut(0.5);
        assert_eq!(cuts.len(), 1);
        let (lo, hi) = cuts[0];
        assert!((lo - 2.5).abs() < 0.02);
        assert!((hi - 7.5).abs() < 0.02);
    }

    #[test]
    fn alpha_cut_disjoint() {
        let mut s = FuzzySet::empty(0.0, 10.0, 1001).unwrap();
        s.aggregate_clipped(&tri(0.0, 1.0, 2.0), 1.0, SNorm::Maximum);
        s.aggregate_clipped(&tri(8.0, 9.0, 10.0), 1.0, SNorm::Maximum);
        let cuts = s.alpha_cut(0.9);
        assert_eq!(cuts.len(), 2);
    }

    #[test]
    fn scaled_clamps() {
        let s = FuzzySet::from_membership(&tri(0.0, 5.0, 10.0), 0.0, 10.0, 101).unwrap();
        let half = s.scaled(0.5);
        assert!((half.height() - 0.5).abs() < 1e-9);
        let over = s.scaled(3.0);
        assert!((over.height() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn membership_interpolates_between_samples() {
        let s = FuzzySet::from_samples(0.0, 1.0, &[0.0, 1.0]).unwrap();
        assert!((s.membership(0.25) - 0.25).abs() < 1e-12);
        assert!((s.membership(0.75) - 0.75).abs() < 1e-12);
    }
}
