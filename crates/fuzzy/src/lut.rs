//! LUT-backed policies: pre-tabulated 2-input controllers.
//!
//! A compiled FLC is already allocation-free, but it still walks its rule
//! base and aggregates sampled sets on every call.  When a controller has
//! exactly two crisp inputs, the entire input→output surface can be
//! quantised once into a [`Lut2d`]; the execute path then degenerates to a
//! bilinear interpolation over four table cells — a handful of multiplies,
//! independent of rule count and resolution.
//!
//! Two tabulation modes are provided:
//!
//! * [`Lut2d::tabulate`] / [`Lut2d::tabulate_fn`] — a plain uniform
//!   `nx × ny` grid.
//! * [`Lut2d::tabulate_refined`] / [`Lut2d::tabulate_fn_refined`] — a
//!   uniform base grid plus dense *local patches* in exactly the cells
//!   whose probed error exceeds a target.  Mamdani decision surfaces are
//!   smooth almost everywhere but carry narrow kink bands (where the set
//!   of firing rules changes); uniform grids must pay the kink density
//!   everywhere, while the two-level table pays it only along the bands —
//!   orders of magnitude less memory and tabulation work for the same
//!   error bound.
//!
//! Tabulation *measures* its own accuracy: the generating function is
//! re-evaluated at every (sub-)cell midpoint — the point of maximal
//! distance from the supporting samples — and the largest deviation is
//! kept as [`Lut2d::max_error`].  Callers pick grid density / error target
//! against that number instead of guessing.
//!
//! # Quick example
//!
//! ```
//! use fuzzy::prelude::*;
//!
//! let x = LinguisticVariable::builder("x", 0.0, 1.0)
//!     .triangle("lo", 0.0, 0.0, 1.0)
//!     .triangle("hi", 0.0, 1.0, 1.0)
//!     .build()
//!     .unwrap();
//! let y = LinguisticVariable::builder("y", 0.0, 1.0)
//!     .triangle("lo", 0.0, 0.0, 1.0)
//!     .triangle("hi", 0.0, 1.0, 1.0)
//!     .build()
//!     .unwrap();
//! let out = LinguisticVariable::builder("out", 0.0, 1.0)
//!     .triangle("no", 0.0, 0.0, 1.0)
//!     .triangle("yes", 0.0, 1.0, 1.0)
//!     .build()
//!     .unwrap();
//! let mut engine = MamdaniEngine::builder()
//!     .input(x)
//!     .input(y)
//!     .output(out)
//!     .build()
//!     .unwrap();
//! engine.add_rule_str("IF x IS hi AND y IS hi THEN out IS yes").unwrap();
//! engine.add_rule_str("IF x IS lo OR y IS lo THEN out IS no").unwrap();
//!
//! let compiled = engine.compile().unwrap();
//! let lut = Lut2d::tabulate(&compiled, 129, 129).unwrap();
//! let exact = compiled.infer(&[0.8, 0.7])[0];
//! assert!((lut.lookup(0.8, 0.7) - exact).abs() <= lut.max_error() + 1e-12);
//! ```

use crate::compile::CompiledEngine;
use crate::error::{FuzzyError, Result};

/// Sentinel in the patch index: "this cell has no refinement patch".
const NO_PATCH: u32 = u32::MAX;

/// A dense local refinement of one base cell: an `nx × ny` uniform
/// sub-grid spanning the cell (corners included).  The two axes are sized
/// independently — a kink band running along one axis needs density only
/// across it.
#[derive(Debug, Clone, PartialEq)]
struct Patch {
    /// Nodes along x (`>= 2`).
    nx: u32,
    /// Nodes along y (`>= 2`).
    ny: u32,
    /// Row-major `nx * ny` samples, `values[sx * ny + sy]`.
    values: Vec<f64>,
}

/// A quantised 2-input policy surface with bilinear interpolation.
///
/// Built with [`Lut2d::tabulate`] (from a 2-input, 1-output
/// [`CompiledEngine`]) or [`Lut2d::tabulate_fn`] (from any
/// `f(x, y) -> f64`, e.g. a wider controller with some inputs pinned);
/// the `*_refined` variants add local patches until a target error is met.
#[derive(Debug, Clone, PartialEq)]
pub struct Lut2d {
    x_min: f64,
    x_max: f64,
    y_min: f64,
    y_max: f64,
    nx: usize,
    ny: usize,
    /// Row-major `nx * ny` base samples: `values[ix * ny + iy]`.
    values: Vec<f64>,
    /// `(nx-1) * (ny-1)` patch slots (empty when tabulated uniformly).
    patch_index: Vec<u32>,
    patches: Vec<Patch>,
    max_error: f64,
}

impl Lut2d {
    /// Tabulate a compiled engine with exactly two inputs and one output on
    /// a uniform `nx × ny` grid spanning the inputs' universes.
    pub fn tabulate(engine: &CompiledEngine, nx: usize, ny: usize) -> Result<Self> {
        let ((x_min, x_max), (y_min, y_max)) = engine_bounds(engine)?;
        let mut scratch = engine.scratch();
        Self::tabulate_fn(x_min, x_max, y_min, y_max, nx, ny, |x, y| {
            engine.infer_into(&[x, y], &mut scratch)[0]
        })
    }

    /// Tabulate a compiled engine on a uniform base grid, then refine every
    /// cell whose probed error exceeds `target_error` with a dense local
    /// patch (up to `max_patch_nodes` nodes per side).
    pub fn tabulate_refined(
        engine: &CompiledEngine,
        base: (usize, usize),
        target_error: f64,
        max_patch_nodes: usize,
    ) -> Result<Self> {
        let ((x_min, x_max), (y_min, y_max)) = engine_bounds(engine)?;
        let mut scratch = engine.scratch();
        Self::tabulate_fn_refined(
            x_min,
            x_max,
            y_min,
            y_max,
            base,
            target_error,
            max_patch_nodes,
            |x, y| engine.infer_into(&[x, y], &mut scratch)[0],
        )
    }

    /// Tabulate an arbitrary 2-input function on a uniform `nx × ny` grid
    /// over `[x_min, x_max] × [y_min, y_max]`.
    ///
    /// `f` is evaluated `nx * ny` times to fill the table, then once per
    /// interior cell midpoint to measure [`Lut2d::max_error`].
    pub fn tabulate_fn(
        x_min: f64,
        x_max: f64,
        y_min: f64,
        y_max: f64,
        nx: usize,
        ny: usize,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self> {
        let mut lut = Self::base_grid(x_min, x_max, y_min, y_max, nx, ny, &mut f)?;
        let mut max_error = 0.0f64;
        for i in 0..nx - 1 {
            for j in 0..ny - 1 {
                let (mx, my) = lut.cell_midpoint(i, j);
                max_error = max_error.max((lut.lookup(mx, my) - f(mx, my)).abs());
            }
        }
        lut.max_error = max_error;
        Ok(lut)
    }

    /// Tabulate an arbitrary 2-input function on a uniform base grid and
    /// refine until every probed midpoint error is at or below
    /// `target_error` (or the per-cell patch density cap
    /// `max_patch_nodes` is reached).
    ///
    /// Patch sizes are chosen from the measured cell error (kink-band
    /// error shrinks linearly with sample spacing) and verified at every
    /// sub-cell midpoint, doubling until the target or the cap is met, so
    /// [`Lut2d::max_error`] reflects the final refined table.
    #[allow(clippy::too_many_arguments)]
    pub fn tabulate_fn_refined(
        x_min: f64,
        x_max: f64,
        y_min: f64,
        y_max: f64,
        (nx, ny): (usize, usize),
        target_error: f64,
        max_patch_nodes: usize,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self> {
        if !(target_error.is_finite() && target_error > 0.0) {
            return Err(FuzzyError::InvalidLut {
                reason: format!("target error must be positive, got {target_error}"),
            });
        }
        let max_patch_nodes = max_patch_nodes.clamp(3, 1025);
        let mut lut = Self::base_grid(x_min, x_max, y_min, y_max, nx, ny, &mut f)?;
        lut.patch_index = vec![NO_PATCH; (nx - 1) * (ny - 1)];

        let mut max_error = 0.0f64;
        for i in 0..nx - 1 {
            for j in 0..ny - 1 {
                // Probe a 3x3 interior lattice, not just the midpoint: the
                // kink bands of Mamdani surfaces are narrow, and a kink
                // skirting a cell corner leaves the midpoint nearly exact
                // while the off-centre error is an order of magnitude
                // larger.
                let cell_error = lut.probe_cell(i, j, &mut f);
                if cell_error <= target_error {
                    max_error = max_error.max(cell_error);
                    continue;
                }
                // Size each patch axis independently from the pure-axis
                // errors measured on the cell's edge midlines (kink-band
                // error decays first-order with sample spacing), verify at
                // sub-midpoints, escalate to the cap if the estimate fell
                // short.
                let (ex, ey) = lut.probe_cell_axes(i, j, &mut f);
                let mut sub_x =
                    patch_nodes_for(ex.max(cell_error * 0.25) / target_error).min(max_patch_nodes);
                let mut sub_y =
                    patch_nodes_for(ey.max(cell_error * 0.25) / target_error).min(max_patch_nodes);
                let patch_error = loop {
                    let patch = lut.sample_patch(i, j, sub_x, sub_y, &mut f);
                    let err = lut.verify_patch(i, j, &patch, &mut f);
                    let keep = err <= target_error
                        || (sub_x >= max_patch_nodes && sub_y >= max_patch_nodes);
                    if keep {
                        let slot = lut.patch_slot(i, j);
                        lut.patch_index[slot] = lut.patches.len() as u32;
                        lut.patches.push(patch);
                        break err;
                    }
                    sub_x = ((sub_x - 1) * 2 + 1).min(max_patch_nodes);
                    sub_y = ((sub_y - 1) * 2 + 1).min(max_patch_nodes);
                };
                max_error = max_error.max(patch_error);
            }
        }
        lut.max_error = max_error;
        Ok(lut)
    }

    /// Shared constructor: fill the uniform base grid (no error pass).
    fn base_grid(
        x_min: f64,
        x_max: f64,
        y_min: f64,
        y_max: f64,
        nx: usize,
        ny: usize,
        f: &mut impl FnMut(f64, f64) -> f64,
    ) -> Result<Self> {
        if !(x_min.is_finite() && x_max.is_finite() && y_min.is_finite() && y_max.is_finite())
            || x_min >= x_max
            || y_min >= y_max
        {
            return Err(FuzzyError::InvalidLut {
                reason: format!(
                    "bounds must be finite, non-degenerate intervals, got \
                     [{x_min}, {x_max}] x [{y_min}, {y_max}]"
                ),
            });
        }
        if nx < 2 || ny < 2 {
            return Err(FuzzyError::InvalidLut {
                reason: format!("grid must be at least 2 x 2, got {nx} x {ny}"),
            });
        }
        let mut values = Vec::with_capacity(nx * ny);
        for i in 0..nx {
            let x = x_min + (x_max - x_min) * (i as f64) / ((nx - 1) as f64);
            for j in 0..ny {
                let y = y_min + (y_max - y_min) * (j as f64) / ((ny - 1) as f64);
                values.push(f(x, y));
            }
        }
        Ok(Self {
            x_min,
            x_max,
            y_min,
            y_max,
            nx,
            ny,
            values,
            patch_index: Vec::new(),
            patches: Vec::new(),
            max_error: 0.0,
        })
    }

    /// Bilinear interpolation of the tabulated surface at `(x, y)`;
    /// coordinates are clamped into the tabulated rectangle.
    #[must_use]
    pub fn lookup(&self, x: f64, y: f64) -> f64 {
        let tx = grid_pos(x, self.x_min, self.x_max, self.nx);
        let ty = grid_pos(y, self.y_min, self.y_max, self.ny);
        let ix = (tx.floor() as usize).min(self.nx - 2);
        let iy = (ty.floor() as usize).min(self.ny - 2);
        let fx = tx - ix as f64;
        let fy = ty - iy as f64;
        if !self.patches.is_empty() {
            let pidx = self.patch_index[ix * (self.ny - 1) + iy];
            if pidx != NO_PATCH {
                return self.patches[pidx as usize].lookup(fx, fy);
            }
        }
        let v00 = self.values[ix * self.ny + iy];
        let v01 = self.values[ix * self.ny + iy + 1];
        let v10 = self.values[(ix + 1) * self.ny + iy];
        let v11 = self.values[(ix + 1) * self.ny + iy + 1];
        let v0 = v00 + (v01 - v00) * fy;
        let v1 = v10 + (v11 - v10) * fy;
        v0 + (v1 - v0) * fx
    }

    /// The largest interpolation error measured at (sub-)cell midpoints
    /// during tabulation.
    #[must_use]
    pub fn max_error(&self) -> f64 {
        self.max_error
    }

    /// The base grid dimensions `(nx, ny)`.
    #[must_use]
    pub fn resolution(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of refined cells (0 for uniform tabulations).
    #[must_use]
    pub fn patch_count(&self) -> usize {
        self.patches.len()
    }

    /// The tabulated rectangle `((x_min, x_max), (y_min, y_max))`.
    #[must_use]
    pub fn bounds(&self) -> ((f64, f64), (f64, f64)) {
        ((self.x_min, self.x_max), (self.y_min, self.y_max))
    }

    /// Memory held by the table's samples (base grid + patches), in bytes.
    #[must_use]
    pub fn sample_bytes(&self) -> usize {
        let patch_values: usize = self.patches.iter().map(|p| p.values.len()).sum();
        (self.values.len() + patch_values) * std::mem::size_of::<f64>()
            + self.patch_index.len() * std::mem::size_of::<u32>()
    }

    fn patch_slot(&self, ix: usize, iy: usize) -> usize {
        ix * (self.ny - 1) + iy
    }

    /// Midpoint of base cell `(ix, iy)` in domain coordinates.
    fn cell_midpoint(&self, ix: usize, iy: usize) -> (f64, f64) {
        (
            self.x_min + (self.x_max - self.x_min) * (ix as f64 + 0.5) / ((self.nx - 1) as f64),
            self.y_min + (self.y_max - self.y_min) * (iy as f64 + 0.5) / ((self.ny - 1) as f64),
        )
    }

    /// Worst interpolation error of base cell `(ix, iy)` over a 3x3
    /// interior probe lattice.
    fn probe_cell(&self, ix: usize, iy: usize, f: &mut impl FnMut(f64, f64) -> f64) -> f64 {
        let (x0, y0, wx, wy) = self.cell_rect(ix, iy);
        let mut worst = 0.0f64;
        for pu in [0.25, 0.5, 0.75] {
            for pv in [0.25, 0.5, 0.75] {
                let x = x0 + wx * pu;
                let y = y0 + wy * pv;
                worst = worst.max((self.lookup(x, y) - f(x, y)).abs());
            }
        }
        worst
    }

    /// Pure-axis interpolation errors of base cell `(ix, iy)`: probing the
    /// midpoints of the cell's four edges isolates the error of each axis
    /// (an edge lies on a node line of the other axis, so interpolation
    /// there is 1-D).
    fn probe_cell_axes(
        &self,
        ix: usize,
        iy: usize,
        f: &mut impl FnMut(f64, f64) -> f64,
    ) -> (f64, f64) {
        let (x0, y0, wx, wy) = self.cell_rect(ix, iy);
        let err = |x: f64, y: f64, f: &mut dyn FnMut(f64, f64) -> f64| {
            (self.lookup(x, y) - f(x, y)).abs()
        };
        let ex = err(x0 + 0.5 * wx, y0, f).max(err(x0 + 0.5 * wx, y0 + wy, f));
        let ey = err(x0, y0 + 0.5 * wy, f).max(err(x0 + wx, y0 + 0.5 * wy, f));
        (ex, ey)
    }

    /// Sample an `nx × ny` patch over base cell `(ix, iy)`.
    fn sample_patch(
        &self,
        ix: usize,
        iy: usize,
        nx: usize,
        ny: usize,
        f: &mut impl FnMut(f64, f64) -> f64,
    ) -> Patch {
        let (x0, y0, wx, wy) = self.cell_rect(ix, iy);
        let mut values = Vec::with_capacity(nx * ny);
        for sx in 0..nx {
            let x = x0 + wx * (sx as f64) / ((nx - 1) as f64);
            for sy in 0..ny {
                let y = y0 + wy * (sy as f64) / ((ny - 1) as f64);
                values.push(f(x, y));
            }
        }
        Patch {
            nx: nx as u32,
            ny: ny as u32,
            values,
        }
    }

    /// Worst interpolation error of `patch` at its sub-cell midpoints.
    fn verify_patch(
        &self,
        ix: usize,
        iy: usize,
        patch: &Patch,
        f: &mut impl FnMut(f64, f64) -> f64,
    ) -> f64 {
        let (x0, y0, wx, wy) = self.cell_rect(ix, iy);
        let (nx, ny) = (patch.nx as usize, patch.ny as usize);
        let mut worst = 0.0f64;
        for sx in 0..nx - 1 {
            let u = (sx as f64 + 0.5) / ((nx - 1) as f64);
            for sy in 0..ny - 1 {
                let v = (sy as f64 + 0.5) / ((ny - 1) as f64);
                let approx = patch.lookup(u, v);
                let exact = f(x0 + wx * u, y0 + wy * v);
                worst = worst.max((approx - exact).abs());
            }
        }
        worst
    }

    /// `(x0, y0, width, height)` of base cell `(ix, iy)`.
    fn cell_rect(&self, ix: usize, iy: usize) -> (f64, f64, f64, f64) {
        let wx = (self.x_max - self.x_min) / ((self.nx - 1) as f64);
        let wy = (self.y_max - self.y_min) / ((self.ny - 1) as f64);
        (
            self.x_min + wx * ix as f64,
            self.y_min + wy * iy as f64,
            wx,
            wy,
        )
    }
}

impl Patch {
    /// Bilinear lookup at fractional cell coordinates `(u, v) ∈ [0, 1]²`.
    fn lookup(&self, u: f64, v: f64) -> f64 {
        let (nx, ny) = (self.nx as usize, self.ny as usize);
        let su = u * ((nx - 1) as f64);
        let sv = v * ((ny - 1) as f64);
        let ix = (su.floor() as usize).min(nx - 2);
        let iy = (sv.floor() as usize).min(ny - 2);
        let fx = su - ix as f64;
        let fy = sv - iy as f64;
        let v00 = self.values[ix * ny + iy];
        let v01 = self.values[ix * ny + iy + 1];
        let v10 = self.values[(ix + 1) * ny + iy];
        let v11 = self.values[(ix + 1) * ny + iy + 1];
        let a = v00 + (v01 - v00) * fy;
        let b = v10 + (v11 - v10) * fy;
        a + (b - a) * fx
    }
}

fn engine_bounds(engine: &CompiledEngine) -> Result<((f64, f64), (f64, f64))> {
    if engine.input_count() != 2 || engine.output_count() != 1 {
        return Err(FuzzyError::InvalidLut {
            reason: format!(
                "Lut2d needs a 2-input, 1-output engine, got {} inputs and {} outputs",
                engine.input_count(),
                engine.output_count()
            ),
        });
    }
    Ok((
        engine.input_bounds(crate::VarId::from_index(0)),
        engine.input_bounds(crate::VarId::from_index(1)),
    ))
}

/// Patch nodes per side for an observed-to-target error ratio, assuming
/// first-order (kink-band) error decay: the next power of two above twice
/// the ratio, plus one node, floored at 5.  The factor of two buys slack
/// so the verify step rarely has to escalate (an escalation throws away a
/// fully sampled patch).
fn patch_nodes_for(ratio: f64) -> usize {
    let subdivisions = (2.0 * ratio.max(1.0)).ceil() as usize;
    (subdivisions.next_power_of_two().max(4)) + 1
}

/// Fractional grid coordinate of `v` in `[min, max]` quantised to `n`
/// points, clamped to the grid.
fn grid_pos(v: f64, min: f64, max: f64, n: usize) -> f64 {
    let v = if v.is_nan() { min } else { v.clamp(min, max) };
    (v - min) / (max - min) * ((n - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::LinguisticVariable;
    use crate::MamdaniEngine;

    fn two_input_engine() -> CompiledEngine {
        let x = LinguisticVariable::builder("x", 0.0, 10.0)
            .triangle("lo", 0.0, 0.0, 10.0)
            .triangle("hi", 0.0, 10.0, 10.0)
            .build()
            .unwrap();
        let y = LinguisticVariable::builder("y", -5.0, 5.0)
            .triangle("neg", -5.0, -5.0, 5.0)
            .triangle("pos", -5.0, 5.0, 5.0)
            .build()
            .unwrap();
        let out = LinguisticVariable::builder("out", 0.0, 1.0)
            .triangle("no", 0.0, 0.0, 1.0)
            .triangle("yes", 0.0, 1.0, 1.0)
            .build()
            .unwrap();
        let mut e = MamdaniEngine::builder()
            .input(x)
            .input(y)
            .output(out)
            .build()
            .unwrap();
        e.add_rules_str([
            "IF x IS hi AND y IS pos THEN out IS yes",
            "IF x IS lo OR y IS neg THEN out IS no",
        ])
        .unwrap();
        e.compile().unwrap()
    }

    #[test]
    fn tabulate_rejects_wrong_shapes() {
        // 3-input engine.
        let a = LinguisticVariable::builder("a", 0.0, 1.0)
            .triangle("t", 0.0, 0.5, 1.0)
            .build()
            .unwrap();
        let out = LinguisticVariable::builder("o", 0.0, 1.0)
            .triangle("t", 0.0, 0.5, 1.0)
            .build()
            .unwrap();
        let mut e = MamdaniEngine::builder()
            .input(a.clone())
            .input(a.clone())
            .input(a)
            .output(out)
            .build()
            .unwrap();
        e.add_rule_str("IF a IS t THEN o IS t").unwrap();
        assert!(matches!(
            Lut2d::tabulate(&e.compile().unwrap(), 16, 16),
            Err(FuzzyError::InvalidLut { .. })
        ));
    }

    #[test]
    fn tabulate_fn_rejects_degenerate_grids() {
        let f = |x: f64, y: f64| x + y;
        assert!(Lut2d::tabulate_fn(0.0, 1.0, 0.0, 1.0, 1, 8, f).is_err());
        assert!(Lut2d::tabulate_fn(0.0, 1.0, 0.0, 1.0, 8, 1, f).is_err());
        assert!(Lut2d::tabulate_fn(1.0, 1.0, 0.0, 1.0, 8, 8, f).is_err());
        assert!(Lut2d::tabulate_fn(f64::NAN, 1.0, 0.0, 1.0, 8, 8, f).is_err());
        assert!(Lut2d::tabulate_fn_refined(0.0, 1.0, 0.0, 1.0, (8, 8), 0.0, 65, f).is_err());
        assert!(Lut2d::tabulate_fn_refined(0.0, 1.0, 0.0, 1.0, (8, 8), f64::NAN, 65, f).is_err());
    }

    #[test]
    fn bilinear_is_exact_for_bilinear_functions() {
        // f(x, y) = 2x + 3y + xy is reproduced exactly by bilinear
        // interpolation, so the measured error is (numerically) zero.
        let lut = Lut2d::tabulate_fn(0.0, 4.0, -1.0, 1.0, 9, 9, |x, y| 2.0 * x + 3.0 * y + x * y)
            .unwrap();
        assert!(lut.max_error() < 1e-12, "error {}", lut.max_error());
        for (x, y) in [(0.0, -1.0), (1.3, 0.2), (4.0, 1.0), (2.71, -0.9)] {
            let exact = 2.0 * x + 3.0 * y + x * y;
            assert!((lut.lookup(x, y) - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn lookup_matches_samples_at_grid_points() {
        let compiled = two_input_engine();
        let lut = Lut2d::tabulate(&compiled, 33, 33).unwrap();
        let mut scratch = compiled.scratch();
        for i in 0..33 {
            for j in 0..33 {
                let x = 10.0 * (i as f64) / 32.0;
                let y = -5.0 + 10.0 * (j as f64) / 32.0;
                let exact = compiled.infer_into(&[x, y], &mut scratch)[0];
                let got = lut.lookup(x, y);
                assert!(
                    (got - exact).abs() < 1e-12,
                    "grid point ({x}, {y}): {got} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn error_shrinks_with_resolution() {
        let compiled = two_input_engine();
        let coarse = Lut2d::tabulate(&compiled, 9, 9).unwrap();
        let fine = Lut2d::tabulate(&compiled, 129, 129).unwrap();
        assert!(fine.max_error() < coarse.max_error());
        assert!(fine.max_error() < 1e-2);
    }

    #[test]
    fn refined_tabulation_meets_the_target() {
        let compiled = two_input_engine();
        let target = 5.0e-4;
        let lut = Lut2d::tabulate_refined(&compiled, (33, 33), target, 129).unwrap();
        assert!(
            lut.max_error() <= target,
            "refined error {} missed target {target}",
            lut.max_error()
        );
        assert!(lut.patch_count() > 0, "this surface has kinks to refine");
        // Honest bound: a dense off-grid lattice stays within the measured
        // error (plus float slack).
        let mut scratch = compiled.scratch();
        let mut worst = 0.0f64;
        for a in 0..=173 {
            let x = 10.0 * f64::from(a) / 173.0;
            for b in 0..=179 {
                let y = -5.0 + 10.0 * f64::from(b) / 179.0;
                let exact = compiled.infer_into(&[x, y], &mut scratch)[0];
                worst = worst.max((lut.lookup(x, y) - exact).abs());
            }
        }
        assert!(
            worst <= 2.0 * lut.max_error() + 1e-9,
            "lattice error {worst} far exceeds measured {}",
            lut.max_error()
        );
    }

    #[test]
    fn refined_beats_uniform_at_equal_memory() {
        let compiled = two_input_engine();
        let refined = Lut2d::tabulate_refined(&compiled, (33, 33), 5.0e-4, 129).unwrap();
        // A uniform grid spending at least as much memory...
        let n = ((refined.sample_bytes() / 8) as f64).sqrt().ceil() as usize;
        let uniform = Lut2d::tabulate(&compiled, n, n).unwrap();
        assert!(
            refined.max_error() < uniform.max_error(),
            "refined {} vs uniform {} ({}x{} = {} bytes vs {} bytes)",
            refined.max_error(),
            uniform.max_error(),
            n,
            n,
            uniform.sample_bytes(),
            refined.sample_bytes()
        );
    }

    #[test]
    fn lookup_clamps_out_of_range_queries() {
        let compiled = two_input_engine();
        let lut = Lut2d::tabulate(&compiled, 17, 17).unwrap();
        assert_eq!(lut.lookup(-100.0, 0.0), lut.lookup(0.0, 0.0));
        assert_eq!(lut.lookup(100.0, 100.0), lut.lookup(10.0, 5.0));
        assert_eq!(lut.lookup(f64::NAN, 0.0), lut.lookup(0.0, 0.0));
    }

    #[test]
    fn metadata_accessors() {
        let lut = Lut2d::tabulate_fn(0.0, 1.0, 0.0, 2.0, 5, 9, |x, y| x * y).unwrap();
        assert_eq!(lut.resolution(), (5, 9));
        assert_eq!(lut.patch_count(), 0);
        assert_eq!(lut.bounds(), ((0.0, 1.0), (0.0, 2.0)));
        assert_eq!(lut.sample_bytes(), 5 * 9 * 8);
    }

    #[test]
    fn patch_sizing_heuristic() {
        assert_eq!(patch_nodes_for(0.5), 5);
        assert_eq!(patch_nodes_for(3.0), 9);
        assert_eq!(patch_nodes_for(5.0), 17);
        assert_eq!(patch_nodes_for(20.0), 65);
    }
}
