//! Membership functions.
//!
//! The paper (Fig. 3) uses two parametric shapes, called `f(x)` (triangular)
//! and `g(x)` (trapezoidal with open shoulders), because they are cheap
//! enough for real-time admission decisions.  This module implements both
//! under the paper's parameterisation plus a few extra shapes that are used
//! by the ablation experiments (gaussian, singleton, shoulder ramps).

use crate::clamp_degree;
use crate::error::{FuzzyError, Result};
use serde::{Deserialize, Serialize};

/// A parametric membership function `μ(x) -> [0, 1]`.
///
/// The paper-facing constructors are [`MembershipFunction::paper_triangular`]
/// (the `f(x; x0, w0, w1)` of Fig. 3) and
/// [`MembershipFunction::paper_trapezoidal`] (the `g(x; x0, x1, w0, w1)`).
/// Generic constructors taking explicit break-points are also provided.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MembershipFunction {
    /// Triangle with feet at `a` and `c` and peak at `b` (`a <= b <= c`).
    Triangular {
        /// Left foot (membership 0).
        a: f64,
        /// Peak (membership 1).
        b: f64,
        /// Right foot (membership 0).
        c: f64,
    },
    /// Trapezoid with feet at `a`/`d` and plateau between `b` and `c`
    /// (`a <= b <= c <= d`).
    Trapezoidal {
        /// Left foot (membership 0).
        a: f64,
        /// Left shoulder of the plateau (membership 1).
        b: f64,
        /// Right shoulder of the plateau (membership 1).
        c: f64,
        /// Right foot (membership 0).
        d: f64,
    },
    /// Gaussian bell `exp(-(x - mean)^2 / (2 sigma^2))`.
    Gaussian {
        /// Centre of the bell (membership 1).
        mean: f64,
        /// Standard deviation (`> 0`).
        sigma: f64,
    },
    /// Crisp singleton: membership 1 exactly at `value`, 0 elsewhere.
    Singleton {
        /// The single supported point.
        value: f64,
    },
    /// Left shoulder: membership 1 for `x <= full`, falling to 0 at `zero`.
    LeftShoulder {
        /// Last point with membership 1.
        full: f64,
        /// First point with membership 0 (`zero > full`).
        zero: f64,
    },
    /// Right shoulder: membership 0 for `x <= zero`, rising to 1 at `full`.
    RightShoulder {
        /// Last point with membership 0.
        zero: f64,
        /// First point with membership 1 (`full > zero`).
        full: f64,
    },
}

impl MembershipFunction {
    /// Triangle from explicit break-points `a <= b <= c`.
    pub fn triangular(a: f64, b: f64, c: f64) -> Result<Self> {
        if !(a.is_finite() && b.is_finite() && c.is_finite()) {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("triangular break-points must be finite, got ({a}, {b}, {c})"),
            });
        }
        if !(a <= b && b <= c) {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "triangular break-points must be ordered a <= b <= c, got ({a}, {b}, {c})"
                ),
            });
        }
        if a == c {
            return Err(FuzzyError::InvalidMembership {
                reason: "triangular support must have positive width (a < c)".into(),
            });
        }
        Ok(Self::Triangular { a, b, c })
    }

    /// Trapezoid from explicit break-points `a <= b <= c <= d`.
    pub fn trapezoidal(a: f64, b: f64, c: f64, d: f64) -> Result<Self> {
        if !(a.is_finite() && b.is_finite() && c.is_finite() && d.is_finite()) {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "trapezoidal break-points must be finite, got ({a}, {b}, {c}, {d})"
                ),
            });
        }
        if !(a <= b && b <= c && c <= d) {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "trapezoidal break-points must be ordered a <= b <= c <= d, got ({a}, {b}, {c}, {d})"
                ),
            });
        }
        if a == d {
            return Err(FuzzyError::InvalidMembership {
                reason: "trapezoidal support must have positive width (a < d)".into(),
            });
        }
        Ok(Self::Trapezoidal { a, b, c, d })
    }

    /// The paper's triangular function `f(x; x0, w0, w1)` (Fig. 3, left):
    /// peak at `x0`, left width `w0`, right width `w1`.
    ///
    /// Equivalent to [`MembershipFunction::triangular`] with break-points
    /// `(x0 - w0, x0, x0 + w1)`.
    pub fn paper_triangular(x0: f64, w0: f64, w1: f64) -> Result<Self> {
        if w0 < 0.0 || w1 < 0.0 {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("widths must be non-negative, got w0={w0}, w1={w1}"),
            });
        }
        Self::triangular(x0 - w0, x0, x0 + w1)
    }

    /// The paper's trapezoidal function `g(x; x0, x1, w0, w1)` (Fig. 3,
    /// right): plateau of membership 1 between `x0` and `x1`, left width
    /// `w0` below `x0`, right width `w1` above `x1`.
    ///
    /// Equivalent to [`MembershipFunction::trapezoidal`] with break-points
    /// `(x0 - w0, x0, x1, x1 + w1)`.
    pub fn paper_trapezoidal(x0: f64, x1: f64, w0: f64, w1: f64) -> Result<Self> {
        if w0 < 0.0 || w1 < 0.0 {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("widths must be non-negative, got w0={w0}, w1={w1}"),
            });
        }
        if x0 > x1 {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("plateau must satisfy x0 <= x1, got x0={x0}, x1={x1}"),
            });
        }
        Self::trapezoidal(x0 - w0, x0, x1, x1 + w1)
    }

    /// Gaussian bell centred at `mean` with standard deviation `sigma > 0`.
    pub fn gaussian(mean: f64, sigma: f64) -> Result<Self> {
        if !mean.is_finite() || !sigma.is_finite() || sigma <= 0.0 {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "gaussian requires finite mean and sigma > 0, got ({mean}, {sigma})"
                ),
            });
        }
        Ok(Self::Gaussian { mean, sigma })
    }

    /// Crisp singleton at `value`.
    pub fn singleton(value: f64) -> Result<Self> {
        if !value.is_finite() {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("singleton value must be finite, got {value}"),
            });
        }
        Ok(Self::Singleton { value })
    }

    /// Left shoulder: full membership up to `full`, zero from `zero` on.
    pub fn left_shoulder(full: f64, zero: f64) -> Result<Self> {
        if !(full.is_finite() && zero.is_finite()) || full >= zero {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("left shoulder requires full < zero, got ({full}, {zero})"),
            });
        }
        Ok(Self::LeftShoulder { full, zero })
    }

    /// Right shoulder: zero membership up to `zero`, full from `full` on.
    pub fn right_shoulder(zero: f64, full: f64) -> Result<Self> {
        if !(full.is_finite() && zero.is_finite()) || zero >= full {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("right shoulder requires zero < full, got ({zero}, {full})"),
            });
        }
        Ok(Self::RightShoulder { zero, full })
    }

    /// Evaluate the membership degree of `x`.
    ///
    /// Always returns a value in `[0, 1]`; non-finite `x` yields `0`.
    #[must_use]
    pub fn membership(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return 0.0;
        }
        let mu = match *self {
            Self::Triangular { a, b, c } => triangle(x, a, b, c),
            Self::Trapezoidal { a, b, c, d } => trapezoid(x, a, b, c, d),
            Self::Gaussian { mean, sigma } => {
                let z = (x - mean) / sigma;
                (-0.5 * z * z).exp()
            }
            Self::Singleton { value } => {
                if x == value {
                    1.0
                } else {
                    0.0
                }
            }
            Self::LeftShoulder { full, zero } => {
                if x <= full {
                    1.0
                } else if x >= zero {
                    0.0
                } else {
                    (zero - x) / (zero - full)
                }
            }
            Self::RightShoulder { zero, full } => {
                if x <= zero {
                    0.0
                } else if x >= full {
                    1.0
                } else {
                    (x - zero) / (full - zero)
                }
            }
        };
        clamp_degree(mu)
    }

    /// The support interval `[lo, hi]` outside of which membership is 0.
    ///
    /// Shoulders and gaussians have unbounded support on one or both sides;
    /// for those the returned bounds are `f64::NEG_INFINITY` /
    /// `f64::INFINITY` on the unbounded side(s) (gaussian support is treated
    /// as `mean ± 4 sigma`, beyond which membership is below 3.4e-4).
    #[must_use]
    pub fn support(&self) -> (f64, f64) {
        match *self {
            Self::Triangular { a, c, .. } => (a, c),
            Self::Trapezoidal { a, d, .. } => (a, d),
            Self::Gaussian { mean, sigma } => (mean - 4.0 * sigma, mean + 4.0 * sigma),
            Self::Singleton { value } => (value, value),
            Self::LeftShoulder { zero, .. } => (f64::NEG_INFINITY, zero),
            Self::RightShoulder { zero, .. } => (zero, f64::INFINITY),
        }
    }

    /// The set of points at which the membership reaches its maximum (the
    /// *core*), returned as an interval `[lo, hi]`.
    #[must_use]
    pub fn core(&self) -> (f64, f64) {
        match *self {
            Self::Triangular { b, .. } => (b, b),
            Self::Trapezoidal { b, c, .. } => (b, c),
            Self::Gaussian { mean, .. } => (mean, mean),
            Self::Singleton { value } => (value, value),
            Self::LeftShoulder { full, .. } => (f64::NEG_INFINITY, full),
            Self::RightShoulder { full, .. } => (full, f64::INFINITY),
        }
    }

    /// A representative crisp value for this term (the midpoint of the core,
    /// clamped into the given universe). Used by weighted-average
    /// defuzzification and by height-based shortcuts.
    #[must_use]
    pub fn centroid_hint(&self, universe_min: f64, universe_max: f64) -> f64 {
        let (lo, hi) = self.core();
        let lo = lo.max(universe_min);
        let hi = hi.min(universe_max);
        0.5 * (lo + hi)
    }

    /// `true` if `x` lies inside the (closed) support of the function.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        let (lo, hi) = self.support();
        x >= lo && x <= hi
    }
}

#[inline]
fn triangle(x: f64, a: f64, b: f64, c: f64) -> f64 {
    if x <= a || x >= c {
        // The peak may sit on a foot (right-angled triangle); handle the
        // degenerate vertical edge so the peak itself still reports 1.
        if (x == a && a == b) || (x == c && c == b) {
            1.0
        } else {
            0.0
        }
    } else if x == b {
        1.0
    } else if x < b {
        (x - a) / (b - a)
    } else {
        (c - x) / (c - b)
    }
}

#[inline]
fn trapezoid(x: f64, a: f64, b: f64, c: f64, d: f64) -> f64 {
    if x < a || x > d {
        0.0
    } else if x >= b && x <= c {
        1.0
    } else if x < b {
        if b == a {
            1.0
        } else {
            (x - a) / (b - a)
        }
    } else if d == c {
        1.0
    } else {
        (d - x) / (d - c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_peak_and_feet() {
        let mf = MembershipFunction::triangular(0.0, 5.0, 10.0).unwrap();
        assert_eq!(mf.membership(5.0), 1.0);
        assert_eq!(mf.membership(0.0), 0.0);
        assert_eq!(mf.membership(10.0), 0.0);
        assert!((mf.membership(2.5) - 0.5).abs() < 1e-12);
        assert!((mf.membership(7.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn triangular_outside_support_is_zero() {
        let mf = MembershipFunction::triangular(0.0, 5.0, 10.0).unwrap();
        assert_eq!(mf.membership(-1.0), 0.0);
        assert_eq!(mf.membership(11.0), 0.0);
    }

    #[test]
    fn right_angled_triangle_left_edge() {
        // Peak at the left foot, as used for "Slow" style terms.
        let mf = MembershipFunction::triangular(0.0, 0.0, 30.0).unwrap();
        assert_eq!(mf.membership(0.0), 1.0);
        assert!((mf.membership(15.0) - 0.5).abs() < 1e-12);
        assert_eq!(mf.membership(30.0), 0.0);
    }

    #[test]
    fn right_angled_triangle_right_edge() {
        let mf = MembershipFunction::triangular(0.0, 30.0, 30.0).unwrap();
        assert_eq!(mf.membership(30.0), 1.0);
        assert!((mf.membership(15.0) - 0.5).abs() < 1e-12);
        assert_eq!(mf.membership(0.0), 0.0);
    }

    #[test]
    fn triangular_rejects_bad_order() {
        assert!(MembershipFunction::triangular(5.0, 1.0, 10.0).is_err());
        assert!(MembershipFunction::triangular(0.0, 11.0, 10.0).is_err());
        assert!(MembershipFunction::triangular(3.0, 3.0, 3.0).is_err());
        assert!(MembershipFunction::triangular(f64::NAN, 1.0, 2.0).is_err());
    }

    #[test]
    fn paper_triangular_matches_explicit() {
        let paper = MembershipFunction::paper_triangular(30.0, 30.0, 30.0).unwrap();
        let explicit = MembershipFunction::triangular(0.0, 30.0, 60.0).unwrap();
        for x in [-10.0, 0.0, 10.0, 30.0, 45.0, 60.0, 70.0] {
            assert_eq!(paper.membership(x), explicit.membership(x));
        }
    }

    #[test]
    fn paper_triangular_rejects_negative_width() {
        assert!(MembershipFunction::paper_triangular(0.0, -1.0, 1.0).is_err());
        assert!(MembershipFunction::paper_triangular(0.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn trapezoidal_plateau() {
        let mf = MembershipFunction::trapezoidal(0.0, 2.0, 8.0, 10.0).unwrap();
        assert_eq!(mf.membership(2.0), 1.0);
        assert_eq!(mf.membership(5.0), 1.0);
        assert_eq!(mf.membership(8.0), 1.0);
        assert!((mf.membership(1.0) - 0.5).abs() < 1e-12);
        assert!((mf.membership(9.0) - 0.5).abs() < 1e-12);
        assert_eq!(mf.membership(-0.1), 0.0);
        assert_eq!(mf.membership(10.1), 0.0);
    }

    #[test]
    fn trapezoidal_vertical_edges() {
        let mf = MembershipFunction::trapezoidal(0.0, 0.0, 5.0, 10.0).unwrap();
        assert_eq!(mf.membership(0.0), 1.0);
        let mf = MembershipFunction::trapezoidal(0.0, 5.0, 10.0, 10.0).unwrap();
        assert_eq!(mf.membership(10.0), 1.0);
    }

    #[test]
    fn trapezoidal_rejects_bad_order() {
        assert!(MembershipFunction::trapezoidal(0.0, 3.0, 2.0, 10.0).is_err());
        assert!(MembershipFunction::trapezoidal(4.0, 3.0, 5.0, 10.0).is_err());
        assert!(MembershipFunction::trapezoidal(2.0, 2.0, 2.0, 2.0).is_err());
    }

    #[test]
    fn paper_trapezoidal_matches_explicit() {
        let paper = MembershipFunction::paper_trapezoidal(60.0, 120.0, 30.0, 10.0).unwrap();
        let explicit = MembershipFunction::trapezoidal(30.0, 60.0, 120.0, 130.0).unwrap();
        for x in [0.0, 30.0, 45.0, 60.0, 100.0, 120.0, 125.0, 130.0, 140.0] {
            assert_eq!(paper.membership(x), explicit.membership(x));
        }
    }

    #[test]
    fn gaussian_properties() {
        let mf = MembershipFunction::gaussian(10.0, 2.0).unwrap();
        assert_eq!(mf.membership(10.0), 1.0);
        assert!(mf.membership(12.0) < 1.0);
        assert!((mf.membership(8.0) - mf.membership(12.0)).abs() < 1e-12);
        assert!(MembershipFunction::gaussian(0.0, 0.0).is_err());
        assert!(MembershipFunction::gaussian(0.0, -1.0).is_err());
    }

    #[test]
    fn singleton_membership() {
        let mf = MembershipFunction::singleton(3.5).unwrap();
        assert_eq!(mf.membership(3.5), 1.0);
        assert_eq!(mf.membership(3.500001), 0.0);
        assert!(MembershipFunction::singleton(f64::INFINITY).is_err());
    }

    #[test]
    fn shoulders() {
        let l = MembershipFunction::left_shoulder(10.0, 20.0).unwrap();
        assert_eq!(l.membership(5.0), 1.0);
        assert_eq!(l.membership(10.0), 1.0);
        assert!((l.membership(15.0) - 0.5).abs() < 1e-12);
        assert_eq!(l.membership(25.0), 0.0);

        let r = MembershipFunction::right_shoulder(10.0, 20.0).unwrap();
        assert_eq!(r.membership(5.0), 0.0);
        assert!((r.membership(15.0) - 0.5).abs() < 1e-12);
        assert_eq!(r.membership(25.0), 1.0);

        assert!(MembershipFunction::left_shoulder(20.0, 10.0).is_err());
        assert!(MembershipFunction::right_shoulder(20.0, 10.0).is_err());
    }

    #[test]
    fn support_and_core() {
        let mf = MembershipFunction::trapezoidal(0.0, 2.0, 8.0, 10.0).unwrap();
        assert_eq!(mf.support(), (0.0, 10.0));
        assert_eq!(mf.core(), (2.0, 8.0));
        assert_eq!(mf.centroid_hint(0.0, 10.0), 5.0);
        assert!(mf.contains(5.0));
        assert!(!mf.contains(11.0));
    }

    #[test]
    fn non_finite_input_yields_zero() {
        let mf = MembershipFunction::triangular(0.0, 5.0, 10.0).unwrap();
        assert_eq!(mf.membership(f64::NAN), 0.0);
        assert_eq!(mf.membership(f64::INFINITY), 0.0);
    }

    #[test]
    fn serde_derives_exist() {
        fn assert_serialize<T: serde::Serialize>(_: &T) {}
        fn assert_deserialize<T: serde::Deserialize>() {}
        let mf = MembershipFunction::paper_trapezoidal(0.2, 0.4, 0.1, 0.1).unwrap();
        assert_serialize(&mf);
        assert_deserialize::<MembershipFunction>();
    }
}
