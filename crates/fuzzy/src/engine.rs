//! The Mamdani inference engine.
//!
//! [`MamdaniEngine`] ties together linguistic variables, a rule base, the
//! t-norm/s-norm pair, the implication method and a defuzzifier — the
//! "fuzzifier / inference engine / fuzzy rule base / defuzzifier" structure
//! of Fig. 2 in the paper.

use crate::defuzz::Defuzzifier;
use crate::error::{FuzzyError, Result};
use crate::norms::{complement, SNorm, TNorm};
use crate::rule::{Connective, Rule, RuleBase};
use crate::set::FuzzySet;
use crate::variable::LinguisticVariable;
use crate::DEFAULT_RESOLUTION;
use serde::{Deserialize, Serialize};

/// How a rule's firing strength is applied to its consequent membership
/// function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Implication {
    /// Clip the consequent at the firing strength (Mamdani min).
    #[default]
    Clip,
    /// Scale the consequent by the firing strength (Larsen product).
    Scale,
}

/// A complete Mamdani fuzzy controller.
///
/// Build one with [`MamdaniEngine::builder`], add rules (programmatically or
/// from text), then call [`MamdaniEngine::infer`] with one crisp value per
/// declared input variable, in declaration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MamdaniEngine {
    inputs: Vec<LinguisticVariable>,
    outputs: Vec<LinguisticVariable>,
    rules: RuleBase,
    and_norm: TNorm,
    or_norm: SNorm,
    aggregation: SNorm,
    implication: Implication,
    defuzzifier: Defuzzifier,
    resolution: usize,
}

impl MamdaniEngine {
    /// Start building an engine.
    #[must_use]
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The declared input variables, in order.
    #[must_use]
    pub fn inputs(&self) -> &[LinguisticVariable] {
        &self.inputs
    }

    /// The declared output variables, in order.
    #[must_use]
    pub fn outputs(&self) -> &[LinguisticVariable] {
        &self.outputs
    }

    /// The rule base.
    #[must_use]
    pub fn rules(&self) -> &RuleBase {
        &self.rules
    }

    /// The configured defuzzifier.
    #[must_use]
    pub fn defuzzifier(&self) -> Defuzzifier {
        self.defuzzifier
    }

    /// The t-norm combining AND antecedents.
    #[must_use]
    pub fn and_norm(&self) -> TNorm {
        self.and_norm
    }

    /// The s-norm combining OR antecedents.
    #[must_use]
    pub fn or_norm(&self) -> SNorm {
        self.or_norm
    }

    /// The s-norm aggregating rule outputs.
    #[must_use]
    pub fn aggregation(&self) -> SNorm {
        self.aggregation
    }

    /// The configured implication method.
    #[must_use]
    pub fn implication(&self) -> Implication {
        self.implication
    }

    /// The sampling resolution of the aggregated output sets.
    #[must_use]
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Add an already-validated rule.
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        rule.validate(&self.inputs, &self.outputs)?;
        self.rules.push(rule);
        Ok(())
    }

    /// Parse, validate and add a textual rule.
    pub fn add_rule_str(&mut self, text: &str) -> Result<()> {
        let rule = Rule::parse(text)?;
        self.add_rule(rule)
    }

    /// Add many textual rules; stops at the first error.
    pub fn add_rules_str<'a>(&mut self, texts: impl IntoIterator<Item = &'a str>) -> Result<()> {
        for t in texts {
            self.add_rule_str(t)?;
        }
        Ok(())
    }

    /// Replace the whole rule base (validating every rule).
    pub fn set_rules(&mut self, rules: RuleBase) -> Result<()> {
        rules.validate(&self.inputs, &self.outputs)?;
        self.rules = rules;
        Ok(())
    }

    /// Run one inference with `crisp_inputs[i]` bound to the `i`-th declared
    /// input variable.
    ///
    /// This is the readable, string-keyed reference path; it allocates one
    /// [`InferenceOutput`] per call.  Hot paths should [`compile`] the
    /// engine once and drive the allocation-free
    /// [`CompiledEngine::infer_into`](crate::compile::CompiledEngine::infer_into)
    /// instead, which produces bit-identical crisp outputs.
    ///
    /// [`compile`]: MamdaniEngine::compile
    pub fn infer(&self, crisp_inputs: &[f64]) -> Result<InferenceOutput<'_>> {
        if crisp_inputs.len() != self.inputs.len() {
            return Err(FuzzyError::InputArity {
                expected: self.inputs.len(),
                got: crisp_inputs.len(),
            });
        }
        if self.rules.is_empty() {
            return Err(FuzzyError::EmptyEngine { missing: "rules" });
        }
        for (v, &x) in self.inputs.iter().zip(crisp_inputs) {
            if !x.is_finite() {
                return Err(FuzzyError::NonFiniteInput {
                    variable: v.name().to_string(),
                    value: x,
                });
            }
        }

        // Fuzzify every input once.
        let fuzzified: Vec<Vec<f64>> = self
            .inputs
            .iter()
            .zip(crisp_inputs)
            .map(|(v, &x)| v.fuzzify(x))
            .collect();

        // Prepare one empty aggregated set per output variable.
        let mut aggregated: Vec<FuzzySet> = self
            .outputs
            .iter()
            .map(|o| FuzzySet::empty(o.min(), o.max(), self.resolution))
            .collect::<Result<_>>()?;
        let mut strengths = Vec::with_capacity(self.rules.len());

        for rule in self.rules.rules() {
            let strength = self.firing_strength(rule, &fuzzified)? * rule.weight();
            strengths.push(strength);
            if strength == 0.0 {
                continue;
            }
            for consequent in rule.consequents() {
                let (out_idx, out_var) = self
                    .outputs
                    .iter()
                    .enumerate()
                    .find(|(_, o)| o.name() == consequent.variable)
                    .ok_or_else(|| FuzzyError::UnknownVariable {
                        name: consequent.variable.clone(),
                    })?;
                let term =
                    out_var
                        .term(&consequent.term)
                        .ok_or_else(|| FuzzyError::UnknownTerm {
                            variable: consequent.variable.clone(),
                            term: consequent.term.clone(),
                        })?;
                match self.implication {
                    Implication::Clip => aggregated[out_idx].aggregate_clipped(
                        term.membership_function(),
                        strength,
                        self.aggregation,
                    ),
                    Implication::Scale => aggregated[out_idx].aggregate_scaled(
                        term.membership_function(),
                        strength,
                        self.aggregation,
                    ),
                }
            }
        }

        Ok(InferenceOutput {
            outputs: &self.outputs,
            aggregated,
            firing_strengths: strengths,
            defuzzifier: self.defuzzifier,
        })
    }

    /// Convenience wrapper: infer and defuzzify the single output variable.
    ///
    /// Returns an error if the engine has more than one output.
    pub fn infer_single(&self, crisp_inputs: &[f64]) -> Result<f64> {
        if self.outputs.len() != 1 {
            return Err(FuzzyError::UnknownOutput {
                name: format!("<engine has {} outputs, expected 1>", self.outputs.len()),
            });
        }
        let out = self.infer(crisp_inputs)?;
        out.crisp(self.outputs[0].name())
    }

    /// Firing strength of a rule given pre-fuzzified inputs.
    fn firing_strength(&self, rule: &Rule, fuzzified: &[Vec<f64>]) -> Result<f64> {
        let mut degrees = Vec::with_capacity(rule.antecedents().len());
        for a in rule.antecedents() {
            let (var_idx, var) = self
                .inputs
                .iter()
                .enumerate()
                .find(|(_, v)| v.name() == a.variable)
                .ok_or_else(|| FuzzyError::UnknownVariable {
                    name: a.variable.clone(),
                })?;
            let term_idx = var
                .term_index(&a.term)
                .ok_or_else(|| FuzzyError::UnknownTerm {
                    variable: a.variable.clone(),
                    term: a.term.clone(),
                })?;
            let mut mu = fuzzified[var_idx][term_idx];
            if a.negated {
                mu = complement(mu);
            }
            degrees.push(mu);
        }
        Ok(match rule.connective() {
            Connective::And => self.and_norm.fold(&degrees),
            Connective::Or => self.or_norm.fold(&degrees),
        })
    }
}

/// The result of one inference: the aggregated output set per output
/// variable plus per-rule firing strengths.
///
/// Output names are borrowed from the engine that produced the result —
/// constructing and querying an `InferenceOutput` never clones a name.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutput<'e> {
    outputs: &'e [LinguisticVariable],
    aggregated: Vec<FuzzySet>,
    firing_strengths: Vec<f64>,
    defuzzifier: Defuzzifier,
}

impl<'e> InferenceOutput<'e> {
    /// The aggregated fuzzy set for output variable `name`.
    pub fn aggregated(&self, name: &str) -> Result<&FuzzySet> {
        self.index_of(name).map(|i| &self.aggregated[i])
    }

    /// Defuzzified crisp value for output variable `name` using the engine's
    /// configured defuzzifier.
    pub fn crisp(&self, name: &str) -> Result<f64> {
        let i = self.index_of(name)?;
        self.defuzzifier.defuzzify(&self.aggregated[i], name)
    }

    /// Defuzzified crisp value, falling back to `default` if no rule fired.
    #[must_use]
    pub fn crisp_or(&self, name: &str, default: f64) -> f64 {
        match self.index_of(name) {
            Ok(i) => self.defuzzifier.defuzzify_or(&self.aggregated[i], default),
            Err(_) => default,
        }
    }

    /// Defuzzify with an explicit method (ablation support).
    pub fn crisp_with(&self, name: &str, method: Defuzzifier) -> Result<f64> {
        let i = self.index_of(name)?;
        method.defuzzify(&self.aggregated[i], name)
    }

    /// Per-rule firing strengths, in rule-base order.
    #[must_use]
    pub fn firing_strengths(&self) -> &[f64] {
        &self.firing_strengths
    }

    /// Names of the output variables, in declaration order (zero-copy:
    /// the names are borrowed straight from the engine's variables).
    pub fn output_names(&self) -> impl Iterator<Item = &'e str> + '_ {
        self.outputs.iter().map(LinguisticVariable::name)
    }

    fn index_of(&self, name: &str) -> Result<usize> {
        self.outputs
            .iter()
            .position(|o| o.name() == name)
            .ok_or_else(|| FuzzyError::UnknownOutput {
                name: name.to_string(),
            })
    }
}

/// Builder for [`MamdaniEngine`].
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    inputs: Vec<LinguisticVariable>,
    outputs: Vec<LinguisticVariable>,
    and_norm: TNorm,
    or_norm: SNorm,
    aggregation: SNorm,
    implication: Implication,
    defuzzifier: Defuzzifier,
    resolution: Option<usize>,
}

impl EngineBuilder {
    /// Declare an input variable (order matters: it defines the order of the
    /// crisp values passed to [`MamdaniEngine::infer`]).
    #[must_use]
    pub fn input(mut self, variable: LinguisticVariable) -> Self {
        self.inputs.push(variable);
        self
    }

    /// Declare an output variable.
    #[must_use]
    pub fn output(mut self, variable: LinguisticVariable) -> Self {
        self.outputs.push(variable);
        self
    }

    /// Set the t-norm used for AND antecedents (default: minimum).
    #[must_use]
    pub fn and_norm(mut self, norm: TNorm) -> Self {
        self.and_norm = norm;
        self
    }

    /// Set the s-norm used for OR antecedents (default: maximum).
    #[must_use]
    pub fn or_norm(mut self, norm: SNorm) -> Self {
        self.or_norm = norm;
        self
    }

    /// Set the s-norm used to aggregate rule outputs (default: maximum).
    #[must_use]
    pub fn aggregation(mut self, norm: SNorm) -> Self {
        self.aggregation = norm;
        self
    }

    /// Set the implication method (default: clip / Mamdani min).
    #[must_use]
    pub fn implication(mut self, implication: Implication) -> Self {
        self.implication = implication;
        self
    }

    /// Set the defuzzifier (default: centroid).
    #[must_use]
    pub fn defuzzifier(mut self, defuzzifier: Defuzzifier) -> Self {
        self.defuzzifier = defuzzifier;
        self
    }

    /// Set the sampling resolution of the aggregated output sets
    /// (default: [`DEFAULT_RESOLUTION`]).
    #[must_use]
    pub fn resolution(mut self, resolution: usize) -> Self {
        self.resolution = Some(resolution.max(2));
        self
    }

    /// Build the engine (without rules; add them afterwards).
    pub fn build(self) -> Result<MamdaniEngine> {
        if self.inputs.is_empty() {
            return Err(FuzzyError::EmptyEngine { missing: "inputs" });
        }
        if self.outputs.is_empty() {
            return Err(FuzzyError::EmptyEngine { missing: "outputs" });
        }
        Ok(MamdaniEngine {
            inputs: self.inputs,
            outputs: self.outputs,
            rules: RuleBase::new(),
            and_norm: self.and_norm,
            or_norm: self.or_norm,
            aggregation: self.aggregation,
            implication: self.implication,
            defuzzifier: self.defuzzifier,
            resolution: self.resolution.unwrap_or(DEFAULT_RESOLUTION),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fan_engine() -> MamdaniEngine {
        let temperature = LinguisticVariable::builder("temperature", 0.0, 40.0)
            .triangle("Cold", 0.0, 0.0, 20.0)
            .triangle("Warm", 10.0, 20.0, 30.0)
            .triangle("Hot", 20.0, 40.0, 40.0)
            .build()
            .unwrap();
        let humidity = LinguisticVariable::builder("humidity", 0.0, 100.0)
            .triangle("Dry", 0.0, 0.0, 50.0)
            .triangle("Humid", 50.0, 100.0, 100.0)
            .build()
            .unwrap();
        let fan = LinguisticVariable::builder("fan", 0.0, 100.0)
            .triangle("Slow", 0.0, 0.0, 50.0)
            .triangle("Medium", 25.0, 50.0, 75.0)
            .triangle("Fast", 50.0, 100.0, 100.0)
            .build()
            .unwrap();
        let mut e = MamdaniEngine::builder()
            .input(temperature)
            .input(humidity)
            .output(fan)
            .build()
            .unwrap();
        e.add_rules_str([
            "IF temperature IS Hot AND humidity IS Humid THEN fan IS Fast",
            "IF temperature IS Hot AND humidity IS Dry THEN fan IS Medium",
            "IF temperature IS Warm THEN fan IS Medium",
            "IF temperature IS Cold THEN fan IS Slow",
        ])
        .unwrap();
        e
    }

    #[test]
    fn builder_requires_inputs_and_outputs() {
        assert!(matches!(
            MamdaniEngine::builder().build(),
            Err(FuzzyError::EmptyEngine { missing: "inputs" })
        ));
        let v = LinguisticVariable::builder("x", 0.0, 1.0)
            .triangle("t", 0.0, 0.5, 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            MamdaniEngine::builder().input(v).build(),
            Err(FuzzyError::EmptyEngine { missing: "outputs" })
        ));
    }

    #[test]
    fn infer_requires_matching_arity() {
        let e = fan_engine();
        assert!(matches!(
            e.infer(&[10.0]),
            Err(FuzzyError::InputArity {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn infer_rejects_non_finite_inputs() {
        let e = fan_engine();
        assert!(matches!(
            e.infer(&[f64::NAN, 50.0]),
            Err(FuzzyError::NonFiniteInput { .. })
        ));
    }

    #[test]
    fn infer_without_rules_errors() {
        let temperature = LinguisticVariable::builder("t", 0.0, 1.0)
            .triangle("x", 0.0, 0.5, 1.0)
            .build()
            .unwrap();
        let out = LinguisticVariable::builder("o", 0.0, 1.0)
            .triangle("y", 0.0, 0.5, 1.0)
            .build()
            .unwrap();
        let e = MamdaniEngine::builder()
            .input(temperature)
            .output(out)
            .build()
            .unwrap();
        assert!(matches!(
            e.infer(&[0.5]),
            Err(FuzzyError::EmptyEngine { missing: "rules" })
        ));
    }

    #[test]
    fn hot_humid_yields_fast_fan() {
        let e = fan_engine();
        let out = e.infer(&[38.0, 90.0]).unwrap();
        let fan = out.crisp("fan").unwrap();
        assert!(fan > 70.0, "fan = {fan}");
    }

    #[test]
    fn cold_yields_slow_fan() {
        let e = fan_engine();
        let out = e.infer(&[2.0, 20.0]).unwrap();
        let fan = out.crisp("fan").unwrap();
        assert!(fan < 30.0, "fan = {fan}");
    }

    #[test]
    fn warm_yields_medium_fan() {
        let e = fan_engine();
        let out = e.infer(&[20.0, 50.0]).unwrap();
        let fan = out.crisp("fan").unwrap();
        assert!((fan - 50.0).abs() < 10.0, "fan = {fan}");
    }

    #[test]
    fn firing_strengths_are_reported_per_rule() {
        let e = fan_engine();
        let out = e.infer(&[38.0, 90.0]).unwrap();
        assert_eq!(out.firing_strengths().len(), 4);
        assert!(out.firing_strengths()[0] > 0.5); // Hot & Humid
        assert_eq!(out.firing_strengths()[3], 0.0); // Cold does not fire
    }

    #[test]
    fn add_rule_validates_names() {
        let mut e = fan_engine();
        assert!(matches!(
            e.add_rule_str("IF pressure IS High THEN fan IS Fast"),
            Err(FuzzyError::UnknownVariable { .. })
        ));
        assert!(matches!(
            e.add_rule_str("IF temperature IS Boiling THEN fan IS Fast"),
            Err(FuzzyError::UnknownTerm { .. })
        ));
        assert!(matches!(
            e.add_rule_str("IF temperature IS Hot THEN fan IS Ludicrous"),
            Err(FuzzyError::UnknownTerm { .. })
        ));
    }

    #[test]
    fn infer_single_requires_one_output() {
        let e = fan_engine();
        assert!(
            (e.infer_single(&[38.0, 90.0]).unwrap()
                - e.infer(&[38.0, 90.0]).unwrap().crisp("fan").unwrap())
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn crisp_unknown_output_errors() {
        let e = fan_engine();
        let out = e.infer(&[20.0, 50.0]).unwrap();
        assert!(matches!(
            out.crisp("nonexistent"),
            Err(FuzzyError::UnknownOutput { .. })
        ));
        assert_eq!(out.crisp_or("nonexistent", -7.0), -7.0);
    }

    #[test]
    fn scale_implication_gives_similar_ordering() {
        let temperature = LinguisticVariable::builder("temperature", 0.0, 40.0)
            .triangle("Cold", 0.0, 0.0, 20.0)
            .triangle("Hot", 20.0, 40.0, 40.0)
            .build()
            .unwrap();
        let fan = LinguisticVariable::builder("fan", 0.0, 100.0)
            .triangle("Slow", 0.0, 0.0, 50.0)
            .triangle("Fast", 50.0, 100.0, 100.0)
            .build()
            .unwrap();
        let mut clip = MamdaniEngine::builder()
            .input(temperature.clone())
            .output(fan.clone())
            .implication(Implication::Clip)
            .build()
            .unwrap();
        let mut scale = MamdaniEngine::builder()
            .input(temperature)
            .output(fan)
            .implication(Implication::Scale)
            .build()
            .unwrap();
        for e in [&mut clip, &mut scale] {
            e.add_rules_str([
                "IF temperature IS Hot THEN fan IS Fast",
                "IF temperature IS Cold THEN fan IS Slow",
            ])
            .unwrap();
        }
        let c = clip.infer_single(&[35.0]).unwrap();
        let s = scale.infer_single(&[35.0]).unwrap();
        assert!(c > 60.0 && s > 60.0);
    }

    #[test]
    fn product_norm_changes_strengths_but_not_direction() {
        let mut e = fan_engine();
        // The output borrows the engine; keep only the strengths around.
        let strengths_min = e.infer(&[30.0, 70.0]).unwrap().firing_strengths().to_vec();
        e = {
            let mut b = MamdaniEngine::builder();
            for v in e.inputs() {
                b = b.input(v.clone());
            }
            for v in e.outputs() {
                b = b.output(v.clone());
            }
            let mut e2 = b.and_norm(TNorm::Product).build().unwrap();
            e2.set_rules(e.rules().clone()).unwrap();
            e2
        };
        let out_prod = e.infer(&[30.0, 70.0]).unwrap();
        // Product t-norm never exceeds minimum.
        for (p, m) in out_prod.firing_strengths().iter().zip(&strengths_min) {
            assert!(p <= m);
        }
    }

    #[test]
    fn or_connective_fires_when_any_clause_holds() {
        let temperature = LinguisticVariable::builder("t", 0.0, 40.0)
            .triangle("Cold", 0.0, 0.0, 20.0)
            .triangle("Hot", 20.0, 40.0, 40.0)
            .build()
            .unwrap();
        let alarm = LinguisticVariable::builder("alarm", 0.0, 1.0)
            .triangle("Off", 0.0, 0.0, 0.6)
            .triangle("On", 0.4, 1.0, 1.0)
            .build()
            .unwrap();
        let mut e = MamdaniEngine::builder()
            .input(temperature)
            .output(alarm)
            .build()
            .unwrap();
        e.add_rule_str("IF t IS Cold OR t IS Hot THEN alarm IS On")
            .unwrap();
        e.add_rule_str("IF t IS NOT Cold AND t IS NOT Hot THEN alarm IS Off")
            .unwrap();
        let extreme = e.infer_single(&[39.0]).unwrap();
        let mild = e.infer_single(&[20.0]).unwrap();
        assert!(extreme > 0.6, "extreme = {extreme}");
        assert!(mild < 0.4, "mild = {mild}");
    }
}
