//! A general-purpose Mamdani fuzzy-logic library.
//!
//! This crate implements every fuzzy-logic building block used by the
//! FACS / FACS-P call-admission controllers described in
//! *"A Fuzzy-based Call Admission Control Scheme for Wireless Cellular
//! Networks Considering Priority of On-going Connections"* (ICDCSW 2009),
//! but it is written as a stand-alone, reusable library: nothing in here
//! knows about cellular networks.
//!
//! # Overview
//!
//! A Mamdani fuzzy controller is assembled from four elements (Fig. 2 of
//! the paper):
//!
//! 1. a **fuzzifier** — [`LinguisticVariable`]s map crisp inputs to
//!    membership degrees of linguistic *terms* (e.g. speed 35 km/h is
//!    `Middle` with degree 0.83 and `Slow` with degree 0.17);
//! 2. a **fuzzy rule base** — a [`RuleBase`] of IF/THEN [`Rule`]s over those
//!    terms;
//! 3. an **inference engine** — [`MamdaniEngine`] evaluates every rule
//!    (AND via a configurable [`TNorm`]), clips or scales the consequent
//!    membership function and aggregates the clipped sets (OR via a
//!    configurable [`SNorm`]);
//! 4. a **defuzzifier** — a [`Defuzzifier`] collapses the aggregated output
//!    set back to a crisp number (centroid by default).
//!
//! # Quick example
//!
//! ```
//! use fuzzy::prelude::*;
//!
//! // A toy controller: IF temperature is Hot THEN fan is Fast.
//! let temperature = LinguisticVariable::builder("temperature", 0.0, 40.0)
//!     .triangle("Cold", 0.0, 0.0, 20.0)
//!     .triangle("Warm", 10.0, 20.0, 30.0)
//!     .triangle("Hot", 20.0, 40.0, 40.0)
//!     .build()
//!     .unwrap();
//! let fan = LinguisticVariable::builder("fan", 0.0, 100.0)
//!     .triangle("Slow", 0.0, 0.0, 50.0)
//!     .triangle("Fast", 50.0, 100.0, 100.0)
//!     .build()
//!     .unwrap();
//!
//! let mut engine = MamdaniEngine::builder()
//!     .input(temperature)
//!     .output(fan)
//!     .build()
//!     .unwrap();
//! engine.add_rule_str("IF temperature IS Hot THEN fan IS Fast").unwrap();
//! engine.add_rule_str("IF temperature IS Cold THEN fan IS Slow").unwrap();
//!
//! let out = engine.infer(&[35.0]).unwrap();
//! assert!(out.crisp("fan").unwrap() > 60.0);
//! ```
//!
//! # Design notes
//!
//! * Membership functions follow the paper's notation: `f(x; x0, w0, w1)` is
//!   the triangular function and `g(x; x0, x1, w0, w1)` the trapezoidal one
//!   (Fig. 3). Both are available through [`MembershipFunction`].
//! * All computation is `f64`; degrees are always clamped to `[0, 1]`.
//! * The crate is `#![forbid(unsafe_code)]` and has no non-`serde`
//!   dependencies.
//!
//! # Hot paths: compile/execute and LUTs
//!
//! [`MamdaniEngine::infer`] is the string-keyed reference path. For code
//! that runs inference in a loop, [`MamdaniEngine::compile`] lowers the
//! engine into a [`CompiledEngine`] whose
//! [`infer_into`](compile::CompiledEngine::infer_into) is allocation-free
//! and bit-identical to `infer`; [`Lut2d`] goes one step further and
//! pre-tabulates any 2-input compiled controller with a measured error
//! bound. See the [`compile`] and [`lut`] module docs for examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compile;
pub mod defuzz;
pub mod engine;
pub mod error;
pub mod lut;
pub mod membership;
pub mod norms;
pub mod rule;
pub mod set;
pub mod variable;

pub use compile::{CompiledEngine, Scratch, TermId, VarId};
pub use defuzz::Defuzzifier;
pub use engine::{EngineBuilder, InferenceOutput, MamdaniEngine};
pub use error::{FuzzyError, Result};
pub use lut::Lut2d;
pub use membership::MembershipFunction;
pub use norms::{SNorm, TNorm};
pub use rule::{Antecedent, Connective, Rule, RuleBase};
pub use set::FuzzySet;
pub use variable::{LinguisticVariable, Term, VariableBuilder};

/// Convenience re-exports for users who want everything in scope.
pub mod prelude {
    pub use crate::compile::{CompiledEngine, Scratch, TermId, VarId};
    pub use crate::defuzz::Defuzzifier;
    pub use crate::engine::{EngineBuilder, InferenceOutput, MamdaniEngine};
    pub use crate::error::{FuzzyError, Result};
    pub use crate::lut::Lut2d;
    pub use crate::membership::MembershipFunction;
    pub use crate::norms::{SNorm, TNorm};
    pub use crate::rule::{Antecedent, Connective, Rule, RuleBase};
    pub use crate::set::FuzzySet;
    pub use crate::variable::{LinguisticVariable, Term, VariableBuilder};
}

/// Default number of samples used when a fuzzy set over a continuous
/// universe has to be discretised (aggregation, defuzzification).
pub const DEFAULT_RESOLUTION: usize = 201;

/// Clamp a membership degree into the valid `[0, 1]` range.
///
/// NaN inputs are mapped to `0.0` so that a single degenerate membership
/// evaluation can never poison an entire inference run.
#[inline]
#[must_use]
pub fn clamp_degree(mu: f64) -> f64 {
    if mu.is_nan() {
        0.0
    } else {
        mu.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_degree_bounds() {
        assert_eq!(clamp_degree(-0.5), 0.0);
        assert_eq!(clamp_degree(0.0), 0.0);
        assert_eq!(clamp_degree(0.5), 0.5);
        assert_eq!(clamp_degree(1.0), 1.0);
        assert_eq!(clamp_degree(1.5), 1.0);
    }

    #[test]
    fn clamp_degree_nan_is_zero() {
        assert_eq!(clamp_degree(f64::NAN), 0.0);
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        use crate::prelude::*;
        let temperature = LinguisticVariable::builder("temperature", 0.0, 40.0)
            .triangle("Cold", 0.0, 0.0, 20.0)
            .triangle("Warm", 10.0, 20.0, 30.0)
            .triangle("Hot", 20.0, 40.0, 40.0)
            .build()
            .unwrap();
        let fan = LinguisticVariable::builder("fan", 0.0, 100.0)
            .triangle("Slow", 0.0, 0.0, 50.0)
            .triangle("Fast", 50.0, 100.0, 100.0)
            .build()
            .unwrap();
        let mut engine = MamdaniEngine::builder()
            .input(temperature)
            .output(fan)
            .build()
            .unwrap();
        engine
            .add_rule_str("IF temperature IS Hot THEN fan IS Fast")
            .unwrap();
        engine
            .add_rule_str("IF temperature IS Cold THEN fan IS Slow")
            .unwrap();
        let out = engine.infer(&[35.0]).unwrap();
        assert!(out.crisp("fan").unwrap() > 60.0);
    }
}
