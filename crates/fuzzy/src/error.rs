//! Error types for the fuzzy-logic library.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FuzzyError>;

/// Errors produced while building or running fuzzy controllers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FuzzyError {
    /// A membership function was constructed with invalid geometry
    /// (e.g. negative width, or break-points out of order).
    InvalidMembership {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A linguistic variable was declared with an empty or inverted universe.
    InvalidUniverse {
        /// Name of the offending variable.
        variable: String,
        /// Lower bound supplied by the caller.
        min: f64,
        /// Upper bound supplied by the caller.
        max: f64,
    },
    /// A variable was declared with no terms, or with duplicate term names.
    InvalidTerms {
        /// Name of the offending variable.
        variable: String,
        /// Description of what is wrong with the term set.
        reason: String,
    },
    /// A rule references a variable that the engine does not know about.
    UnknownVariable {
        /// The variable name that failed to resolve.
        name: String,
    },
    /// A rule references a term that does not exist on its variable.
    UnknownTerm {
        /// The variable whose term set was searched.
        variable: String,
        /// The term name that failed to resolve.
        term: String,
    },
    /// A textual rule could not be parsed.
    RuleParse {
        /// The offending rule text.
        text: String,
        /// Description of the parse failure.
        reason: String,
    },
    /// `infer` was called with the wrong number of crisp inputs.
    InputArity {
        /// Number of declared input variables.
        expected: usize,
        /// Number of crisp values supplied.
        got: usize,
    },
    /// A crisp input was not a finite number.
    NonFiniteInput {
        /// Name of the input variable.
        variable: String,
        /// The offending value.
        value: f64,
    },
    /// The engine was built without inputs, outputs or rules.
    EmptyEngine {
        /// Which part of the engine is missing.
        missing: &'static str,
    },
    /// Defuzzification was attempted on a set with zero area / empty support
    /// and no fallback was configured.
    EmptyOutput {
        /// Name of the output variable whose aggregated set was empty.
        variable: String,
    },
    /// An output variable name passed to a lookup did not exist.
    UnknownOutput {
        /// The requested output name.
        name: String,
    },
    /// A lookup table could not be tabulated (wrong engine shape, bad
    /// bounds or a degenerate grid).
    InvalidLut {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for FuzzyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzyError::InvalidMembership { reason } => {
                write!(f, "invalid membership function: {reason}")
            }
            FuzzyError::InvalidUniverse { variable, min, max } => write!(
                f,
                "invalid universe [{min}, {max}] for linguistic variable `{variable}`"
            ),
            FuzzyError::InvalidTerms { variable, reason } => {
                write!(f, "invalid term set for `{variable}`: {reason}")
            }
            FuzzyError::UnknownVariable { name } => {
                write!(f, "unknown linguistic variable `{name}`")
            }
            FuzzyError::UnknownTerm { variable, term } => {
                write!(f, "variable `{variable}` has no term named `{term}`")
            }
            FuzzyError::RuleParse { text, reason } => {
                write!(f, "could not parse rule `{text}`: {reason}")
            }
            FuzzyError::InputArity { expected, got } => {
                write!(f, "expected {expected} crisp inputs, got {got}")
            }
            FuzzyError::NonFiniteInput { variable, value } => {
                write!(f, "non-finite input {value} for variable `{variable}`")
            }
            FuzzyError::EmptyEngine { missing } => {
                write!(f, "engine cannot be built: no {missing} declared")
            }
            FuzzyError::EmptyOutput { variable } => write!(
                f,
                "aggregated output for `{variable}` is empty; no rule fired"
            ),
            FuzzyError::UnknownOutput { name } => {
                write!(f, "unknown output variable `{name}`")
            }
            FuzzyError::InvalidLut { reason } => {
                write!(f, "invalid lookup table: {reason}")
            }
        }
    }
}

impl std::error::Error for FuzzyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FuzzyError::UnknownTerm {
            variable: "speed".into(),
            term: "Ludicrous".into(),
        };
        let s = e.to_string();
        assert!(s.contains("speed"));
        assert!(s.contains("Ludicrous"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = FuzzyError::InputArity {
            expected: 3,
            got: 2,
        };
        let b = FuzzyError::InputArity {
            expected: 3,
            got: 2,
        };
        assert_eq!(a, b);
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(FuzzyError::EmptyEngine { missing: "rules" });
        assert!(e.to_string().contains("rules"));
    }
}
