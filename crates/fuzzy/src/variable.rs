//! Linguistic variables and their term sets.
//!
//! A [`LinguisticVariable`] is a named quantity (e.g. "speed") with a bounded
//! universe of discourse and a set of named [`Term`]s, each carrying a
//! [`MembershipFunction`].  Fuzzification of a crisp value is simply the
//! evaluation of every term's membership at that value.

use crate::error::{FuzzyError, Result};
use crate::membership::MembershipFunction;
use serde::{Deserialize, Serialize};

/// A named linguistic term (e.g. "Slow") with its membership function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Term {
    name: String,
    membership: MembershipFunction,
}

impl Term {
    /// Create a term from a name and a membership function.
    pub fn new(name: impl Into<String>, membership: MembershipFunction) -> Self {
        Self {
            name: name.into(),
            membership,
        }
    }

    /// The term's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The term's membership function.
    #[must_use]
    pub fn membership_function(&self) -> &MembershipFunction {
        &self.membership
    }

    /// Membership degree of `x` in this term.
    #[must_use]
    pub fn membership(&self, x: f64) -> f64 {
        self.membership.membership(x)
    }
}

/// A linguistic variable: name + universe of discourse + term set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinguisticVariable {
    name: String,
    min: f64,
    max: f64,
    terms: Vec<Term>,
}

impl LinguisticVariable {
    /// Start building a variable named `name` over the universe `[min, max]`.
    pub fn builder(name: impl Into<String>, min: f64, max: f64) -> VariableBuilder {
        VariableBuilder::new(name, min, max)
    }

    /// Construct directly from parts (prefer [`LinguisticVariable::builder`]).
    pub fn new(name: impl Into<String>, min: f64, max: f64, terms: Vec<Term>) -> Result<Self> {
        let name = name.into();
        if !(min.is_finite() && max.is_finite()) || min >= max {
            return Err(FuzzyError::InvalidUniverse {
                variable: name,
                min,
                max,
            });
        }
        if terms.is_empty() {
            return Err(FuzzyError::InvalidTerms {
                variable: name,
                reason: "term set is empty".into(),
            });
        }
        for (i, t) in terms.iter().enumerate() {
            if terms[..i].iter().any(|u| u.name() == t.name()) {
                return Err(FuzzyError::InvalidTerms {
                    variable: name,
                    reason: format!("duplicate term name `{}`", t.name()),
                });
            }
        }
        Ok(Self {
            name,
            min,
            max,
            terms,
        })
    }

    /// The variable's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lower bound of the universe of discourse.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the universe of discourse.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The term set.
    #[must_use]
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of terms.
    #[must_use]
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Look up a term by name.
    #[must_use]
    pub fn term(&self, name: &str) -> Option<&Term> {
        self.terms.iter().find(|t| t.name() == name)
    }

    /// Index of a term by name.
    #[must_use]
    pub fn term_index(&self, name: &str) -> Option<usize> {
        self.terms.iter().position(|t| t.name() == name)
    }

    /// Clamp a crisp value into the universe of discourse.
    #[must_use]
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.min, self.max)
    }

    /// Fuzzify a crisp value: membership degree of every term, in term order.
    ///
    /// The value is clamped into the universe first (the paper's controllers
    /// always receive in-range measurements, but a simulation substrate may
    /// produce values marginally outside due to floating point).
    #[must_use]
    pub fn fuzzify(&self, x: f64) -> Vec<f64> {
        let x = self.clamp(x);
        self.terms.iter().map(|t| t.membership(x)).collect()
    }

    /// Fuzzify and pair each degree with its term name.
    #[must_use]
    pub fn fuzzify_named(&self, x: f64) -> Vec<(&str, f64)> {
        let x = self.clamp(x);
        self.terms
            .iter()
            .map(|t| (t.name(), t.membership(x)))
            .collect()
    }

    /// The name of the term with the highest membership at `x`
    /// (ties broken by term order).
    #[must_use]
    pub fn best_term(&self, x: f64) -> &str {
        let x = self.clamp(x);
        let mut best = 0usize;
        let mut best_mu = f64::NEG_INFINITY;
        for (i, t) in self.terms.iter().enumerate() {
            let mu = t.membership(x);
            if mu > best_mu {
                best = i;
                best_mu = mu;
            }
        }
        self.terms[best].name()
    }

    /// Check that the term set *covers* the universe: every sampled point has
    /// at least one term with membership >= `epsilon`.
    ///
    /// Useful as a sanity check when defining controllers — an uncovered gap
    /// means no rule can fire there.
    #[must_use]
    pub fn covers_universe(&self, epsilon: f64, samples: usize) -> bool {
        let samples = samples.max(2);
        for i in 0..samples {
            let x = self.min + (self.max - self.min) * (i as f64) / ((samples - 1) as f64);
            let max_mu = self
                .terms
                .iter()
                .map(|t| t.membership(x))
                .fold(0.0, f64::max);
            if max_mu < epsilon {
                return false;
            }
        }
        true
    }
}

/// Builder for [`LinguisticVariable`].
#[derive(Debug, Clone)]
pub struct VariableBuilder {
    name: String,
    min: f64,
    max: f64,
    terms: Vec<Term>,
    error: Option<FuzzyError>,
}

impl VariableBuilder {
    fn new(name: impl Into<String>, min: f64, max: f64) -> Self {
        Self {
            name: name.into(),
            min,
            max,
            terms: Vec::new(),
            error: None,
        }
    }

    /// Add a pre-built term.
    #[must_use]
    pub fn term(mut self, term: Term) -> Self {
        self.terms.push(term);
        self
    }

    fn push(mut self, name: &str, mf: Result<MembershipFunction>) -> Self {
        match mf {
            Ok(mf) => self.terms.push(Term::new(name, mf)),
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
            }
        }
        self
    }

    /// Add a triangular term with explicit break-points `a <= b <= c`.
    #[must_use]
    pub fn triangle(self, name: &str, a: f64, b: f64, c: f64) -> Self {
        let mf = MembershipFunction::triangular(a, b, c);
        self.push(name, mf)
    }

    /// Add a trapezoidal term with explicit break-points `a <= b <= c <= d`.
    #[must_use]
    pub fn trapezoid(self, name: &str, a: f64, b: f64, c: f64, d: f64) -> Self {
        let mf = MembershipFunction::trapezoidal(a, b, c, d);
        self.push(name, mf)
    }

    /// Add a term using the paper's triangular `f(x; x0, w0, w1)` form.
    #[must_use]
    pub fn paper_triangle(self, name: &str, x0: f64, w0: f64, w1: f64) -> Self {
        let mf = MembershipFunction::paper_triangular(x0, w0, w1);
        self.push(name, mf)
    }

    /// Add a term using the paper's trapezoidal `g(x; x0, x1, w0, w1)` form.
    #[must_use]
    pub fn paper_trapezoid(self, name: &str, x0: f64, x1: f64, w0: f64, w1: f64) -> Self {
        let mf = MembershipFunction::paper_trapezoidal(x0, x1, w0, w1);
        self.push(name, mf)
    }

    /// Add a gaussian term.
    #[must_use]
    pub fn gaussian(self, name: &str, mean: f64, sigma: f64) -> Self {
        let mf = MembershipFunction::gaussian(mean, sigma);
        self.push(name, mf)
    }

    /// Add a left-shoulder term (full membership below `full`).
    #[must_use]
    pub fn left_shoulder(self, name: &str, full: f64, zero: f64) -> Self {
        let mf = MembershipFunction::left_shoulder(full, zero);
        self.push(name, mf)
    }

    /// Add a right-shoulder term (full membership above `full`).
    #[must_use]
    pub fn right_shoulder(self, name: &str, zero: f64, full: f64) -> Self {
        let mf = MembershipFunction::right_shoulder(zero, full);
        self.push(name, mf)
    }

    /// Finish building the variable.
    pub fn build(self) -> Result<LinguisticVariable> {
        if let Some(e) = self.error {
            return Err(e);
        }
        LinguisticVariable::new(self.name, self.min, self.max, self.terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed() -> LinguisticVariable {
        LinguisticVariable::builder("speed", 0.0, 120.0)
            .triangle("Slow", 0.0, 0.0, 60.0)
            .triangle("Middle", 30.0, 60.0, 90.0)
            .trapezoid("Fast", 60.0, 120.0, 120.0, 120.0)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_builds_terms_in_order() {
        let v = speed();
        assert_eq!(v.name(), "speed");
        assert_eq!(v.term_count(), 3);
        assert_eq!(v.terms()[0].name(), "Slow");
        assert_eq!(v.terms()[2].name(), "Fast");
        assert_eq!(v.min(), 0.0);
        assert_eq!(v.max(), 120.0);
    }

    #[test]
    fn builder_propagates_membership_errors() {
        let r = LinguisticVariable::builder("bad", 0.0, 1.0)
            .triangle("broken", 1.0, 0.5, 0.0)
            .build();
        assert!(matches!(r, Err(FuzzyError::InvalidMembership { .. })));
    }

    #[test]
    fn rejects_empty_terms_and_bad_universe() {
        assert!(matches!(
            LinguisticVariable::builder("x", 0.0, 1.0).build(),
            Err(FuzzyError::InvalidTerms { .. })
        ));
        assert!(matches!(
            LinguisticVariable::builder("x", 1.0, 0.0)
                .triangle("t", 0.0, 0.5, 1.0)
                .build(),
            Err(FuzzyError::InvalidUniverse { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_term_names() {
        let r = LinguisticVariable::builder("x", 0.0, 1.0)
            .triangle("A", 0.0, 0.0, 1.0)
            .triangle("A", 0.0, 1.0, 1.0)
            .build();
        assert!(matches!(r, Err(FuzzyError::InvalidTerms { .. })));
    }

    #[test]
    fn fuzzify_returns_one_degree_per_term() {
        let v = speed();
        let degrees = v.fuzzify(45.0);
        assert_eq!(degrees.len(), 3);
        // 45 km/h: Slow = (60-45)/60 = 0.25, Middle = (45-30)/30 = 0.5, Fast = 0.
        assert!((degrees[0] - 0.25).abs() < 1e-12);
        assert!((degrees[1] - 0.5).abs() < 1e-12);
        assert_eq!(degrees[2], 0.0);
    }

    #[test]
    fn fuzzify_clamps_out_of_range() {
        let v = speed();
        let lo = v.fuzzify(-10.0);
        let hi = v.fuzzify(500.0);
        assert_eq!(lo[0], 1.0);
        assert_eq!(hi[2], 1.0);
    }

    #[test]
    fn fuzzify_named_pairs() {
        let v = speed();
        let named = v.fuzzify_named(0.0);
        assert_eq!(named[0], ("Slow", 1.0));
    }

    #[test]
    fn term_lookup() {
        let v = speed();
        assert!(v.term("Middle").is_some());
        assert!(v.term("Ludicrous").is_none());
        assert_eq!(v.term_index("Fast"), Some(2));
    }

    #[test]
    fn best_term_picks_max() {
        let v = speed();
        assert_eq!(v.best_term(0.0), "Slow");
        assert_eq!(v.best_term(60.0), "Middle");
        assert_eq!(v.best_term(119.0), "Fast");
    }

    #[test]
    fn coverage_check() {
        let v = speed();
        assert!(v.covers_universe(1e-6, 200));
        let gappy = LinguisticVariable::builder("gappy", 0.0, 100.0)
            .triangle("Low", 0.0, 10.0, 20.0)
            .triangle("High", 80.0, 90.0, 100.0)
            .build()
            .unwrap();
        assert!(!gappy.covers_universe(1e-6, 200));
    }
}
