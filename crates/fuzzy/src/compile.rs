//! The compile/execute split: a lowered, allocation-free inference engine.
//!
//! [`MamdaniEngine::infer`] is the readable reference implementation: it
//! resolves variables and terms by string name and returns a freshly
//! allocated [`crate::InferenceOutput`] per call.  That is the right shape
//! for building and debugging a controller, and exactly the wrong shape for
//! an admission hot path that runs millions of inferences per sweep.
//!
//! [`MamdaniEngine::compile`] lowers a validated engine into a
//! [`CompiledEngine`]:
//!
//! * names are interned into dense [`VarId`] / [`TermId`] handles resolved
//!   once at compile time — the execute path never touches a string;
//! * the rule base is flattened into index arrays (antecedent slots into a
//!   flat fuzzification buffer, consequent slots into flat output-term
//!   tables);
//! * every consequent term's membership function is pre-sampled on the
//!   engine's output grid, so aggregation is `min`/`max` over arrays with
//!   no membership evaluation;
//! * all working memory lives in a caller-owned [`Scratch`], so the
//!   steady-state path [`CompiledEngine::infer_into`] performs **zero heap
//!   allocations** (asserted by a counting-allocator test).
//!
//! The compiled path is *bit-identical* to the interpreted one: for the
//! same inputs, `infer_into` produces exactly the `f64` bits that
//! `MamdaniEngine::infer` + [`crate::Defuzzifier`] produce.  This is what
//! lets the FACS controllers switch to the compiled path without moving a
//! single simulation result.
//!
//! # Quick example
//!
//! ```
//! use fuzzy::prelude::*;
//!
//! let temperature = LinguisticVariable::builder("temperature", 0.0, 40.0)
//!     .triangle("Cold", 0.0, 0.0, 20.0)
//!     .triangle("Hot", 20.0, 40.0, 40.0)
//!     .build()
//!     .unwrap();
//! let fan = LinguisticVariable::builder("fan", 0.0, 100.0)
//!     .triangle("Slow", 0.0, 0.0, 50.0)
//!     .triangle("Fast", 50.0, 100.0, 100.0)
//!     .build()
//!     .unwrap();
//! let mut engine = MamdaniEngine::builder()
//!     .input(temperature)
//!     .output(fan)
//!     .build()
//!     .unwrap();
//! engine.add_rule_str("IF temperature IS Hot THEN fan IS Fast").unwrap();
//! engine.add_rule_str("IF temperature IS Cold THEN fan IS Slow").unwrap();
//!
//! // Compile once, then run the allocation-free hot path.
//! let compiled = engine.compile().unwrap();
//! let mut scratch = compiled.scratch();
//! let crisp = compiled.infer_into(&[35.0], &mut scratch);
//! assert!(crisp[0] > 60.0);
//!
//! // Bit-identical to the interpreted reference path.
//! let reference = engine.infer(&[35.0]).unwrap().crisp("fan").unwrap();
//! assert_eq!(crisp[0].to_bits(), reference.to_bits());
//! ```

use crate::defuzz::Defuzzifier;
use crate::engine::{Implication, MamdaniEngine};
use crate::error::{FuzzyError, Result};
use crate::membership::MembershipFunction;
use crate::norms::{complement, SNorm, TNorm};
use crate::rule::Connective;
use crate::{clamp_degree, variable::LinguisticVariable};

/// Interned handle to a variable of a [`CompiledEngine`].
///
/// For inputs the id is the position of the crisp value in the slice passed
/// to [`CompiledEngine::infer_into`]; for outputs it is the position of the
/// crisp result in the returned slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(u16);

impl VarId {
    /// The dense index this handle stands for.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Handle for the variable at declaration position `index`.
    ///
    /// # Panics
    /// Panics when `index` exceeds `u16::MAX` (an engine can never intern
    /// that many variables).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self(u16::try_from(index).expect("variable index fits in u16"))
    }
}

/// Interned handle to one term of one variable of a [`CompiledEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TermId {
    var: u16,
    term: u16,
}

impl TermId {
    /// The variable this term belongs to.
    #[must_use]
    pub fn var(self) -> VarId {
        VarId(self.var)
    }

    /// The term's position within its variable's term set.
    #[must_use]
    pub fn term_index(self) -> usize {
        usize::from(self.term)
    }
}

/// One lowered antecedent clause: a slot into the flat fuzzification buffer
/// plus the negation flag.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CompiledAntecedent {
    slot: u32,
    negated: bool,
}

/// One lowered consequent clause: output index and flat output-term index.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CompiledConsequent {
    out: u32,
    flat_term: u32,
}

/// Reusable working memory for [`CompiledEngine::infer_into`].
///
/// Create one with [`CompiledEngine::scratch`] and reuse it across calls;
/// after construction the execute path never allocates.  A `Scratch` is
/// tied to the shape of the engine that created it (buffer sizes are
/// checked on every call).
#[derive(Debug, Clone, PartialEq)]
pub struct Scratch {
    /// Membership degree of every input term, flattened in declaration
    /// order.
    fuzzified: Vec<f64>,
    /// Per-rule firing strength (weight applied), in rule-base order.
    strengths: Vec<f64>,
    /// Maximum firing strength per output term (max-aggregation fast path).
    term_strengths: Vec<f64>,
    /// Aggregated output sets, one `resolution`-sized window per output.
    aggregated: Vec<f64>,
    /// Crisp result per output variable.
    crisp: Vec<f64>,
    /// Samples per aggregated output window (copied from the engine so the
    /// accessors below cannot be fed a stale resolution).
    resolution: usize,
}

impl Scratch {
    /// Per-rule firing strengths of the most recent inference, in rule-base
    /// order (weights applied) — the diagnostic counterpart of
    /// [`crate::InferenceOutput::firing_strengths`].
    #[must_use]
    pub fn firing_strengths(&self) -> &[f64] {
        &self.strengths
    }

    /// The aggregated (sampled) output set of output `out` from the most
    /// recent inference.
    #[must_use]
    pub fn aggregated(&self, out: VarId) -> &[f64] {
        &self.aggregated[out.index() * self.resolution..(out.index() + 1) * self.resolution]
    }
}

/// A lowered Mamdani engine: the execute half of the compile/execute split.
///
/// Build one with [`MamdaniEngine::compile`]; see the [module docs](self)
/// for the design and a usage example.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledEngine {
    // --- inputs -----------------------------------------------------------
    input_names: Vec<String>,
    input_bounds: Vec<(f64, f64)>,
    /// `inputs + 1` offsets into `mfs` / `Scratch::fuzzified`.
    input_term_offsets: Vec<u32>,
    input_term_names: Vec<String>,
    /// Every input term's membership function, flattened.
    mfs: Vec<MembershipFunction>,
    // --- rules ------------------------------------------------------------
    rule_weights: Vec<f64>,
    rule_connectives: Vec<Connective>,
    rule_ante_offsets: Vec<u32>,
    antecedents: Vec<CompiledAntecedent>,
    rule_cons_offsets: Vec<u32>,
    consequents: Vec<CompiledConsequent>,
    // --- outputs ----------------------------------------------------------
    output_names: Vec<String>,
    output_bounds: Vec<(f64, f64)>,
    /// `outputs + 1` offsets into the flat output-term index space.
    output_term_offsets: Vec<u32>,
    output_term_names: Vec<String>,
    /// Pre-sampled consequent membership functions: one `resolution`-sized
    /// window per flat output term.
    term_samples: Vec<f64>,
    /// Pre-computed sample grids: one `resolution`-sized window per output.
    xs: Vec<f64>,
    /// Crisp value reported when no rule fired for an output (defaults to
    /// the universe midpoint, the same value the interpreted centroid
    /// degenerates to).
    empty_defaults: Vec<f64>,
    // --- configuration ----------------------------------------------------
    resolution: usize,
    and_norm: TNorm,
    or_norm: SNorm,
    aggregation: SNorm,
    implication: Implication,
    defuzzifier: Defuzzifier,
    /// `aggregation == SNorm::Maximum` lets aggregation run once per fired
    /// output *term* (with the max strength over its rules) instead of once
    /// per fired rule — exact for max, and the common Mamdani case.
    fast_max_aggregation: bool,
}

impl CompiledEngine {
    /// Lower `engine` into its compiled form.
    ///
    /// Fails when the engine has no rules, or when a rule references an
    /// unknown variable or term (rules added through the engine API are
    /// always valid; this guards hand-built rule bases).
    pub fn compile(engine: &MamdaniEngine) -> Result<Self> {
        if engine.rules().is_empty() {
            return Err(FuzzyError::EmptyEngine { missing: "rules" });
        }
        let resolution = engine.resolution();
        let inputs = engine.inputs();
        let outputs = engine.outputs();

        let mut input_term_offsets = Vec::with_capacity(inputs.len() + 1);
        let mut input_term_names = Vec::new();
        let mut mfs = Vec::new();
        input_term_offsets.push(0u32);
        for v in inputs {
            for t in v.terms() {
                input_term_names.push(t.name().to_string());
                mfs.push(t.membership_function().clone());
            }
            input_term_offsets.push(as_u32(mfs.len()));
        }

        let mut output_term_offsets = Vec::with_capacity(outputs.len() + 1);
        let mut output_term_names = Vec::new();
        let mut term_samples = Vec::new();
        let mut xs = Vec::with_capacity(outputs.len() * resolution);
        let mut empty_defaults = Vec::with_capacity(outputs.len());
        output_term_offsets.push(0u32);
        let mut flat_terms = 0usize;
        for v in outputs {
            // The exact grid FuzzySet::x_at produces for this universe.
            let (min, max) = (v.min(), v.max());
            let grid_start = xs.len();
            for i in 0..resolution {
                xs.push(min + (max - min) * (i as f64) / ((resolution - 1) as f64));
            }
            for t in v.terms() {
                output_term_names.push(t.name().to_string());
                let mf = t.membership_function();
                for &x in &xs[grid_start..grid_start + resolution] {
                    term_samples.push(mf.membership(x));
                }
            }
            flat_terms += v.term_count();
            output_term_offsets.push(as_u32(flat_terms));
            empty_defaults.push(0.5 * (min + max));
        }

        let find_var = |vars: &[LinguisticVariable], name: &str| -> Result<usize> {
            vars.iter()
                .position(|v| v.name() == name)
                .ok_or_else(|| FuzzyError::UnknownVariable {
                    name: name.to_string(),
                })
        };

        let mut rule_weights = Vec::with_capacity(engine.rules().len());
        let mut rule_connectives = Vec::with_capacity(engine.rules().len());
        let mut rule_ante_offsets = vec![0u32];
        let mut antecedents = Vec::new();
        let mut rule_cons_offsets = vec![0u32];
        let mut consequents = Vec::new();
        for rule in engine.rules().rules() {
            rule_weights.push(rule.weight());
            rule_connectives.push(rule.connective());
            for a in rule.antecedents() {
                let var_idx = find_var(inputs, &a.variable)?;
                let term_idx =
                    inputs[var_idx]
                        .term_index(&a.term)
                        .ok_or_else(|| FuzzyError::UnknownTerm {
                            variable: a.variable.clone(),
                            term: a.term.clone(),
                        })?;
                antecedents.push(CompiledAntecedent {
                    slot: input_term_offsets[var_idx] + as_u32(term_idx),
                    negated: a.negated,
                });
            }
            rule_ante_offsets.push(as_u32(antecedents.len()));
            for c in rule.consequents() {
                let out_idx = find_var(outputs, &c.variable)?;
                let term_idx = outputs[out_idx].term_index(&c.term).ok_or_else(|| {
                    FuzzyError::UnknownTerm {
                        variable: c.variable.clone(),
                        term: c.term.clone(),
                    }
                })?;
                consequents.push(CompiledConsequent {
                    out: as_u32(out_idx),
                    flat_term: output_term_offsets[out_idx] + as_u32(term_idx),
                });
            }
            rule_cons_offsets.push(as_u32(consequents.len()));
        }

        Ok(Self {
            input_names: inputs.iter().map(|v| v.name().to_string()).collect(),
            input_bounds: inputs.iter().map(|v| (v.min(), v.max())).collect(),
            input_term_offsets,
            input_term_names,
            mfs,
            rule_weights,
            rule_connectives,
            rule_ante_offsets,
            antecedents,
            rule_cons_offsets,
            consequents,
            output_names: outputs.iter().map(|v| v.name().to_string()).collect(),
            output_bounds: outputs.iter().map(|v| (v.min(), v.max())).collect(),
            output_term_offsets,
            output_term_names,
            term_samples,
            xs,
            empty_defaults,
            resolution,
            and_norm: engine.and_norm(),
            or_norm: engine.or_norm(),
            aggregation: engine.aggregation(),
            implication: engine.implication(),
            defuzzifier: engine.defuzzifier(),
            fast_max_aggregation: engine.aggregation() == SNorm::Maximum,
        })
    }

    /// Number of declared input variables (= required input arity).
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.input_bounds.len()
    }

    /// Number of declared output variables (= length of the crisp result).
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.output_bounds.len()
    }

    /// Number of compiled rules.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.rule_weights.len()
    }

    /// The engine's output sampling resolution.
    #[must_use]
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Universe bounds of input `id`.
    #[must_use]
    pub fn input_bounds(&self, id: VarId) -> (f64, f64) {
        self.input_bounds[id.index()]
    }

    /// Universe bounds of output `id`.
    #[must_use]
    pub fn output_bounds(&self, id: VarId) -> (f64, f64) {
        self.output_bounds[id.index()]
    }

    /// Resolve an input variable name to its interned handle.
    #[must_use]
    pub fn input_id(&self, name: &str) -> Option<VarId> {
        self.input_names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u16))
    }

    /// Resolve an output variable name to its interned handle.
    #[must_use]
    pub fn output_id(&self, name: &str) -> Option<VarId> {
        self.output_names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u16))
    }

    /// Resolve an input term name to its interned handle.
    #[must_use]
    pub fn input_term_id(&self, var: VarId, name: &str) -> Option<TermId> {
        let lo = self.input_term_offsets[var.index()] as usize;
        let hi = self.input_term_offsets[var.index() + 1] as usize;
        self.input_term_names[lo..hi]
            .iter()
            .position(|n| n == name)
            .map(|t| TermId {
                var: var.0,
                term: t as u16,
            })
    }

    /// Override the crisp value reported for output `id` when no rule fires
    /// (default: the universe midpoint, matching what the interpreted
    /// centroid degenerates to on an empty set).
    pub fn set_empty_default(&mut self, id: VarId, value: f64) {
        self.empty_defaults[id.index()] = value;
    }

    /// Allocate a [`Scratch`] sized for this engine.
    #[must_use]
    pub fn scratch(&self) -> Scratch {
        Scratch {
            fuzzified: vec![0.0; self.mfs.len()],
            strengths: vec![0.0; self.rule_weights.len()],
            term_strengths: vec![0.0; self.output_term_names.len()],
            aggregated: vec![0.0; self.output_bounds.len() * self.resolution],
            crisp: vec![0.0; self.output_bounds.len()],
            resolution: self.resolution,
        }
    }

    /// Run one inference into caller-owned scratch memory and return the
    /// crisp outputs (one per output variable, declaration order).
    ///
    /// This is the steady-state hot path: after [`CompiledEngine::scratch`]
    /// has been allocated, **no heap allocation happens here**, and for any
    /// inputs inside the declared universes the results are bit-identical
    /// to [`MamdaniEngine::infer`] followed by the configured defuzzifier.
    ///
    /// Out-of-universe inputs are clamped (as [`LinguisticVariable::fuzzify`]
    /// does); a NaN input yields zero membership everywhere, so the affected
    /// outputs fall back to their empty defaults instead of erroring.
    ///
    /// # Panics
    /// Panics when `inputs` does not match the declared arity or `scratch`
    /// was created for a different engine shape.
    pub fn infer_into<'s>(&self, inputs: &[f64], scratch: &'s mut Scratch) -> &'s [f64] {
        assert_eq!(
            inputs.len(),
            self.input_bounds.len(),
            "compiled engine expects {} inputs, got {}",
            self.input_bounds.len(),
            inputs.len()
        );
        assert!(
            scratch.fuzzified.len() == self.mfs.len()
                && scratch.strengths.len() == self.rule_weights.len()
                && scratch.term_strengths.len() == self.output_term_names.len()
                && scratch.aggregated.len() == self.output_bounds.len() * self.resolution
                && scratch.crisp.len() == self.output_bounds.len()
                && scratch.resolution == self.resolution,
            "scratch was created for a different engine shape"
        );

        // Fuzzify every input once (clamped into its universe, exactly as
        // LinguisticVariable::fuzzify does).
        for (i, (&raw, &(lo, hi))) in inputs.iter().zip(&self.input_bounds).enumerate() {
            let x = raw.clamp(lo, hi);
            let start = self.input_term_offsets[i] as usize;
            let end = self.input_term_offsets[i + 1] as usize;
            for t in start..end {
                scratch.fuzzified[t] = self.mfs[t].membership(x);
            }
        }

        scratch.aggregated.fill(0.0);
        if self.fast_max_aggregation {
            // Max aggregation commutes with clipping/scaling, so instead of
            // one array pass per fired *rule* we take the max strength per
            // consequent *term* and do one array pass per fired term —
            // exact (max/min/mul are monotone), and typically 2–4x fewer
            // passes for the paper's 63-rule FRB1.
            scratch.term_strengths.fill(0.0);
            for r in 0..self.rule_weights.len() {
                let strength = self.firing_strength(r, &scratch.fuzzified) * self.rule_weights[r];
                scratch.strengths[r] = strength;
                if strength == 0.0 {
                    continue;
                }
                let height = clamp_degree(strength);
                for c in self.cons_range(r) {
                    let flat = self.consequents[c].flat_term as usize;
                    scratch.term_strengths[flat] = scratch.term_strengths[flat].max(height);
                }
            }
            for out in 0..self.output_bounds.len() {
                let agg_start = out * self.resolution;
                let term_lo = self.output_term_offsets[out] as usize;
                let term_hi = self.output_term_offsets[out + 1] as usize;
                for flat in term_lo..term_hi {
                    let height = scratch.term_strengths[flat];
                    if height == 0.0 {
                        continue;
                    }
                    let samples =
                        &self.term_samples[flat * self.resolution..(flat + 1) * self.resolution];
                    let agg = &mut scratch.aggregated[agg_start..agg_start + self.resolution];
                    // `SNorm::Maximum.apply` is `max` plus degree clamps;
                    // every operand here is already in [0, 1], so plain
                    // `f64::max` is bit-identical and branch-free.
                    match self.implication {
                        Implication::Clip => {
                            for (a, &s) in agg.iter_mut().zip(samples) {
                                *a = a.max(s.min(height));
                            }
                        }
                        Implication::Scale => {
                            for (a, &s) in agg.iter_mut().zip(samples) {
                                *a = a.max(s * height);
                            }
                        }
                    }
                }
            }
        } else {
            // General path: aggregate per fired rule, in rule-base order —
            // the exact operation sequence of the interpreted engine.
            for r in 0..self.rule_weights.len() {
                let strength = self.firing_strength(r, &scratch.fuzzified) * self.rule_weights[r];
                scratch.strengths[r] = strength;
                if strength == 0.0 {
                    continue;
                }
                let height = clamp_degree(strength);
                for c in self.cons_range(r) {
                    let cons = self.consequents[c];
                    let agg_start = cons.out as usize * self.resolution;
                    let samples = &self.term_samples[cons.flat_term as usize * self.resolution..];
                    let agg = &mut scratch.aggregated[agg_start..agg_start + self.resolution];
                    match self.implication {
                        Implication::Clip => {
                            for (a, &s) in agg.iter_mut().zip(samples) {
                                *a = self.aggregation.apply(*a, s.min(height));
                            }
                        }
                        Implication::Scale => {
                            for (a, &s) in agg.iter_mut().zip(samples) {
                                *a = self.aggregation.apply(*a, s * height);
                            }
                        }
                    }
                }
            }
        }

        for out in 0..self.output_bounds.len() {
            let agg = &scratch.aggregated[out * self.resolution..(out + 1) * self.resolution];
            let xs = &self.xs[out * self.resolution..(out + 1) * self.resolution];
            scratch.crisp[out] = if agg.iter().all(|&d| d == 0.0) {
                self.empty_defaults[out]
            } else {
                let (min, max) = self.output_bounds[out];
                defuzzify_slice(self.defuzzifier, agg, xs, min, max)
            };
        }
        &scratch.crisp
    }

    /// Convenience wrapper over [`CompiledEngine::infer_into`] that
    /// allocates a fresh [`Scratch`] — handy in tests, not for hot paths.
    #[must_use]
    pub fn infer(&self, inputs: &[f64]) -> Vec<f64> {
        let mut scratch = self.scratch();
        self.infer_into(inputs, &mut scratch).to_vec()
    }

    #[inline]
    fn cons_range(&self, rule: usize) -> std::ops::Range<usize> {
        self.rule_cons_offsets[rule] as usize..self.rule_cons_offsets[rule + 1] as usize
    }

    /// Incremental fold matching `TNorm::fold` / `SNorm::fold` bit for bit.
    ///
    /// Folds stop early at the norm's absorbing element (`T(0, x) = 0` for
    /// every t-norm, `S(1, x) = 1` for every s-norm — the boundary
    /// conditions the norms module tests), which prunes most of a dense
    /// rule grid: a typical crisp input activates two terms per variable,
    /// so the vast majority of rules zero out on their first antecedent.
    #[inline]
    fn firing_strength(&self, rule: usize, fuzzified: &[f64]) -> f64 {
        let lo = self.rule_ante_offsets[rule] as usize;
        let hi = self.rule_ante_offsets[rule + 1] as usize;
        match self.rule_connectives[rule] {
            Connective::And => {
                let min_norm = self.and_norm == TNorm::Minimum;
                let mut acc: f64 = 1.0;
                for a in &self.antecedents[lo..hi] {
                    let mut mu = fuzzified[a.slot as usize];
                    if a.negated {
                        mu = complement(mu);
                    }
                    // Membership degrees are already clamped, so the
                    // minimum t-norm reduces to a plain `min`.
                    acc = if min_norm {
                        acc.min(mu)
                    } else {
                        self.and_norm.apply(acc, mu)
                    };
                    if acc == 0.0 {
                        return 0.0;
                    }
                }
                acc
            }
            Connective::Or => {
                let max_norm = self.or_norm == SNorm::Maximum;
                let mut acc: f64 = 0.0;
                for a in &self.antecedents[lo..hi] {
                    let mut mu = fuzzified[a.slot as usize];
                    if a.negated {
                        mu = complement(mu);
                    }
                    // Early exit at the absorbing element is only
                    // bit-exact for the max norm (e.g. the probabilistic
                    // sum of 1 and b rounds, it does not short-circuit).
                    if max_norm {
                        acc = acc.max(mu);
                        if acc == 1.0 {
                            return 1.0;
                        }
                    } else {
                        acc = self.or_norm.apply(acc, mu);
                    }
                }
                acc
            }
        }
    }
}

impl MamdaniEngine {
    /// Lower this engine into an allocation-free [`CompiledEngine`] (the
    /// compile half of the compile/execute split — see the
    /// [`compile`](crate::compile) module docs).
    pub fn compile(&self) -> Result<CompiledEngine> {
        CompiledEngine::compile(self)
    }
}

fn as_u32(n: usize) -> u32 {
    u32::try_from(n).expect("compiled engine index spaces fit in u32")
}

/// Defuzzify a sampled set with the exact operation sequence of
/// [`Defuzzifier::defuzzify`] on a [`crate::FuzzySet`], operating on the
/// pre-computed grid instead of recomputing `x_at` per sample.
///
/// The caller has already handled the empty-set case.
fn defuzzify_slice(method: Defuzzifier, degrees: &[f64], xs: &[f64], min: f64, max: f64) -> f64 {
    let n = degrees.len();
    match method {
        Defuzzifier::Centroid => {
            // Same accumulation order as defuzz::centroid (end points get
            // half weight), with the interior branch hoisted out of the
            // loop — `1.0 * mu * x` and `mu * x` are the same bits, and
            // the `0.0 + v` first additions keep the signed-zero bits of
            // the original fold.
            let mut num = 0.0;
            let mut den = 0.0;
            num += 0.5 * degrees[0] * xs[0];
            den += 0.5 * degrees[0];
            for i in 1..n - 1 {
                let mu = degrees[i];
                num += mu * xs[i];
                den += mu;
            }
            num += 0.5 * degrees[n - 1] * xs[n - 1];
            den += 0.5 * degrees[n - 1];
            if den == 0.0 {
                0.5 * (min + max)
            } else {
                num / den
            }
        }
        Defuzzifier::Bisector => {
            let total: f64 = degrees.iter().sum();
            if total == 0.0 {
                return 0.5 * (min + max);
            }
            let half = total / 2.0;
            let mut acc: f64 = 0.0;
            for i in 0..n {
                acc += degrees[i];
                if acc >= half {
                    return xs[i];
                }
            }
            max
        }
        Defuzzifier::MeanOfMaxima => {
            let h = height(degrees);
            let mut sum = 0.0;
            let mut count = 0usize;
            for i in 0..n {
                if (degrees[i] - h).abs() <= MAXIMA_TOL {
                    sum += xs[i];
                    count += 1;
                }
            }
            sum / count as f64
        }
        Defuzzifier::SmallestOfMaxima => {
            let h = height(degrees);
            for i in 0..n {
                if (degrees[i] - h).abs() <= MAXIMA_TOL {
                    return xs[i];
                }
            }
            max
        }
        Defuzzifier::LargestOfMaxima => {
            let h = height(degrees);
            for i in (0..n).rev() {
                if (degrees[i] - h).abs() <= MAXIMA_TOL {
                    return xs[i];
                }
            }
            min
        }
        // Defuzzifier is #[non_exhaustive]; mirror any future method here.
        #[allow(unreachable_patterns)]
        _ => unreachable!("unknown defuzzifier variant"),
    }
}

/// Tolerance used by `defuzz::maxima_indices`.
const MAXIMA_TOL: f64 = 1e-12;

fn height(degrees: &[f64]) -> f64 {
    degrees.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::LinguisticVariable;

    fn fan_engine() -> MamdaniEngine {
        let temperature = LinguisticVariable::builder("temperature", 0.0, 40.0)
            .triangle("Cold", 0.0, 0.0, 20.0)
            .triangle("Warm", 10.0, 20.0, 30.0)
            .triangle("Hot", 20.0, 40.0, 40.0)
            .build()
            .unwrap();
        let humidity = LinguisticVariable::builder("humidity", 0.0, 100.0)
            .triangle("Dry", 0.0, 0.0, 50.0)
            .triangle("Humid", 50.0, 100.0, 100.0)
            .build()
            .unwrap();
        let fan = LinguisticVariable::builder("fan", 0.0, 100.0)
            .triangle("Slow", 0.0, 0.0, 50.0)
            .triangle("Medium", 25.0, 50.0, 75.0)
            .triangle("Fast", 50.0, 100.0, 100.0)
            .build()
            .unwrap();
        let mut e = MamdaniEngine::builder()
            .input(temperature)
            .input(humidity)
            .output(fan)
            .build()
            .unwrap();
        e.add_rules_str([
            "IF temperature IS Hot AND humidity IS Humid THEN fan IS Fast",
            "IF temperature IS Hot AND humidity IS Dry THEN fan IS Medium",
            "IF temperature IS Warm THEN fan IS Medium",
            "IF temperature IS Cold THEN fan IS Slow",
            "IF temperature IS NOT Cold OR humidity IS Humid THEN fan IS Medium",
        ])
        .unwrap();
        e
    }

    #[test]
    fn compile_requires_rules() {
        let t = LinguisticVariable::builder("t", 0.0, 1.0)
            .triangle("x", 0.0, 0.5, 1.0)
            .build()
            .unwrap();
        let o = LinguisticVariable::builder("o", 0.0, 1.0)
            .triangle("y", 0.0, 0.5, 1.0)
            .build()
            .unwrap();
        let e = MamdaniEngine::builder().input(t).output(o).build().unwrap();
        assert!(matches!(
            e.compile(),
            Err(FuzzyError::EmptyEngine { missing: "rules" })
        ));
    }

    #[test]
    fn compiled_shape_matches_engine() {
        let e = fan_engine();
        let c = e.compile().unwrap();
        assert_eq!(c.input_count(), 2);
        assert_eq!(c.output_count(), 1);
        assert_eq!(c.rule_count(), 5);
        assert_eq!(c.resolution(), e.resolution());
        let fan = c.output_id("fan").unwrap();
        assert_eq!(fan.index(), 0);
        assert_eq!(c.output_bounds(fan), (0.0, 100.0));
        let temp = c.input_id("temperature").unwrap();
        assert_eq!(c.input_bounds(temp), (0.0, 40.0));
        let hot = c.input_term_id(temp, "Hot").unwrap();
        assert_eq!(hot.var(), temp);
        assert_eq!(hot.term_index(), 2);
        assert!(c.input_id("pressure").is_none());
        assert!(c.input_term_id(temp, "Boiling").is_none());
    }

    #[test]
    fn compiled_matches_interpreted_bit_for_bit() {
        let e = fan_engine();
        let c = e.compile().unwrap();
        let mut scratch = c.scratch();
        for t in 0..=40 {
            for h in 0..=20 {
                let inputs = [f64::from(t), f64::from(h) * 5.0];
                let compiled = c.infer_into(&inputs, &mut scratch)[0];
                let interpreted = e.infer(&inputs).unwrap().crisp("fan").unwrap();
                assert_eq!(
                    compiled.to_bits(),
                    interpreted.to_bits(),
                    "divergence at {inputs:?}: {compiled} vs {interpreted}"
                );
            }
        }
    }

    #[test]
    fn firing_strengths_match_interpreted() {
        let e = fan_engine();
        let c = e.compile().unwrap();
        let mut scratch = c.scratch();
        let inputs = [33.0, 80.0];
        c.infer_into(&inputs, &mut scratch);
        let reference = e.infer(&inputs).unwrap();
        assert_eq!(scratch.firing_strengths(), reference.firing_strengths());
    }

    #[test]
    fn slow_path_matches_interpreted_for_probabilistic_sum() {
        // ProbabilisticSum aggregation disables the per-term fast path.
        let mut e = {
            let b = MamdaniEngine::builder();
            let src = fan_engine();
            let mut b2 = b;
            for v in src.inputs() {
                b2 = b2.input(v.clone());
            }
            for v in src.outputs() {
                b2 = b2.output(v.clone());
            }
            b2.aggregation(SNorm::ProbabilisticSum).build().unwrap()
        };
        e.add_rules_str([
            "IF temperature IS Hot THEN fan IS Fast",
            "IF temperature IS Warm THEN fan IS Medium",
            "IF temperature IS Hot AND humidity IS Humid THEN fan IS Fast",
        ])
        .unwrap();
        let c = e.compile().unwrap();
        assert!(!c.fast_max_aggregation);
        let mut scratch = c.scratch();
        for t in 0..=40 {
            let inputs = [f64::from(t), 75.0];
            let compiled = c.infer_into(&inputs, &mut scratch)[0];
            // No rule fires at cold temperatures; the compiled empty
            // default is the universe midpoint (50), mirror it here.
            let interpreted = e.infer(&inputs).unwrap().crisp_or("fan", 50.0);
            assert_eq!(compiled.to_bits(), interpreted.to_bits());
        }
    }

    #[test]
    fn scale_implication_matches_interpreted() {
        let mut e = {
            let src = fan_engine();
            let mut b = MamdaniEngine::builder();
            for v in src.inputs() {
                b = b.input(v.clone());
            }
            for v in src.outputs() {
                b = b.output(v.clone());
            }
            b.implication(Implication::Scale).build().unwrap()
        };
        e.add_rules_str([
            "IF temperature IS Hot THEN fan IS Fast",
            "IF temperature IS Cold THEN fan IS Slow",
            "IF temperature IS Warm THEN fan IS Medium",
        ])
        .unwrap();
        let c = e.compile().unwrap();
        let mut scratch = c.scratch();
        for t in 0..=80 {
            let inputs = [f64::from(t) / 2.0, 40.0];
            let compiled = c.infer_into(&inputs, &mut scratch)[0];
            let interpreted = e.infer(&inputs).unwrap().crisp("fan").unwrap();
            assert_eq!(compiled.to_bits(), interpreted.to_bits());
        }
    }

    #[test]
    fn all_defuzzifiers_match_interpreted() {
        for method in [
            Defuzzifier::Centroid,
            Defuzzifier::Bisector,
            Defuzzifier::MeanOfMaxima,
            Defuzzifier::SmallestOfMaxima,
            Defuzzifier::LargestOfMaxima,
        ] {
            let mut e = {
                let src = fan_engine();
                let mut b = MamdaniEngine::builder();
                for v in src.inputs() {
                    b = b.input(v.clone());
                }
                for v in src.outputs() {
                    b = b.output(v.clone());
                }
                b.defuzzifier(method).build().unwrap()
            };
            e.add_rules_str([
                "IF temperature IS Hot THEN fan IS Fast",
                "IF temperature IS Cold THEN fan IS Slow",
                "IF temperature IS Warm THEN fan IS Medium",
            ])
            .unwrap();
            let c = e.compile().unwrap();
            let mut scratch = c.scratch();
            for t in 0..=40 {
                let inputs = [f64::from(t), 50.0];
                let compiled = c.infer_into(&inputs, &mut scratch)[0];
                let interpreted = e.infer(&inputs).unwrap().crisp("fan").unwrap();
                assert_eq!(
                    compiled.to_bits(),
                    interpreted.to_bits(),
                    "{method:?} at {t}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_inputs_are_clamped_like_fuzzify() {
        let e = fan_engine();
        let c = e.compile().unwrap();
        let mut scratch = c.scratch();
        let clamped = c.infer_into(&[500.0, -3.0], &mut scratch)[0];
        let reference = e.infer(&[40.0, 0.0]).unwrap().crisp("fan").unwrap();
        assert_eq!(clamped.to_bits(), reference.to_bits());
    }

    #[test]
    fn empty_output_uses_configured_default() {
        // An engine whose single rule cannot fire at the probed input.
        let t = LinguisticVariable::builder("t", 0.0, 10.0)
            .triangle("low", 0.0, 0.0, 2.0)
            .triangle("high", 8.0, 10.0, 10.0)
            .build()
            .unwrap();
        let o = LinguisticVariable::builder("o", 0.0, 1.0)
            .triangle("yes", 0.0, 1.0, 1.0)
            .build()
            .unwrap();
        let mut e = MamdaniEngine::builder().input(t).output(o).build().unwrap();
        e.add_rule_str("IF t IS high THEN o IS yes").unwrap();
        let mut c = e.compile().unwrap();
        let mut scratch = c.scratch();
        // Default fallback: the universe midpoint.
        assert_eq!(c.infer_into(&[1.0], &mut scratch)[0], 0.5);
        c.set_empty_default(c.output_id("o").unwrap(), -7.0);
        assert_eq!(c.infer_into(&[1.0], &mut scratch)[0], -7.0);
        // Matches crisp_or with the same default.
        let interpreted = e.infer(&[1.0]).unwrap().crisp_or("o", -7.0);
        assert_eq!(c.infer_into(&[1.0], &mut scratch)[0], interpreted);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        let c = fan_engine().compile().unwrap();
        let mut scratch = c.scratch();
        let _ = c.infer_into(&[1.0], &mut scratch);
    }

    #[test]
    #[should_panic(expected = "different engine shape")]
    fn foreign_scratch_panics() {
        let c = fan_engine().compile().unwrap();
        let t = LinguisticVariable::builder("t", 0.0, 1.0)
            .triangle("x", 0.0, 0.5, 1.0)
            .build()
            .unwrap();
        let o = LinguisticVariable::builder("o", 0.0, 1.0)
            .triangle("y", 0.0, 0.5, 1.0)
            .build()
            .unwrap();
        let mut other = MamdaniEngine::builder().input(t).output(o).build().unwrap();
        other.add_rule_str("IF t IS x THEN o IS y").unwrap();
        let mut foreign = other.compile().unwrap().scratch();
        let _ = c.infer_into(&[1.0, 1.0], &mut foreign);
    }

    #[test]
    fn convenience_infer_matches_infer_into() {
        let c = fan_engine().compile().unwrap();
        let mut scratch = c.scratch();
        let a = c.infer(&[30.0, 60.0]);
        let b = c.infer_into(&[30.0, 60.0], &mut scratch);
        assert_eq!(a.as_slice(), b);
    }
}
