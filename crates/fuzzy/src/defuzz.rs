//! Defuzzification methods.
//!
//! The aggregated output [`FuzzySet`] produced by the inference engine is
//! collapsed to a crisp value.  The paper's controllers use the centre of
//! area (centroid); the other methods are provided for the ablation study
//! (`bench/benches/ablation.rs`) and for completeness.

use crate::error::{FuzzyError, Result};
use crate::set::FuzzySet;
use serde::{Deserialize, Serialize};

/// Strategy for collapsing a fuzzy set to a crisp value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Defuzzifier {
    /// Centre of area / gravity: `∫ x μ(x) dx / ∫ μ(x) dx`.
    #[default]
    Centroid,
    /// The `x` that splits the area under `μ` into two equal halves.
    Bisector,
    /// Mean of the maxima.
    MeanOfMaxima,
    /// Smallest of the maxima.
    SmallestOfMaxima,
    /// Largest of the maxima.
    LargestOfMaxima,
}

impl Defuzzifier {
    /// Defuzzify `set`.
    ///
    /// Returns [`FuzzyError::EmptyOutput`] when the set has no support
    /// (no rule fired) — callers that want a fallback should use
    /// [`Defuzzifier::defuzzify_or`].
    pub fn defuzzify(self, set: &FuzzySet, variable: &str) -> Result<f64> {
        if set.is_empty() {
            return Err(FuzzyError::EmptyOutput {
                variable: variable.to_string(),
            });
        }
        Ok(match self {
            Defuzzifier::Centroid => centroid(set),
            Defuzzifier::Bisector => bisector(set),
            Defuzzifier::MeanOfMaxima => mean_of_maxima(set),
            Defuzzifier::SmallestOfMaxima => smallest_of_maxima(set),
            Defuzzifier::LargestOfMaxima => largest_of_maxima(set),
        })
    }

    /// Defuzzify, falling back to `default` when the set is empty.
    #[must_use]
    pub fn defuzzify_or(self, set: &FuzzySet, default: f64) -> f64 {
        self.defuzzify(set, "<fallback>").unwrap_or(default)
    }
}

fn centroid(set: &FuzzySet) -> f64 {
    let n = set.resolution();
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        let mu = set.degrees()[i];
        let x = set.x_at(i);
        // trapezoidal weights: half weight at the end points
        let w = if i == 0 || i == n - 1 { 0.5 } else { 1.0 };
        num += w * mu * x;
        den += w * mu;
    }
    if den == 0.0 {
        0.5 * (set.min() + set.max())
    } else {
        num / den
    }
}

fn bisector(set: &FuzzySet) -> f64 {
    let n = set.resolution();
    let total: f64 = set.degrees().iter().sum();
    if total == 0.0 {
        return 0.5 * (set.min() + set.max());
    }
    let half = total / 2.0;
    let mut acc = 0.0;
    for i in 0..n {
        acc += set.degrees()[i];
        if acc >= half {
            return set.x_at(i);
        }
    }
    set.max()
}

fn maxima_indices(set: &FuzzySet) -> Vec<usize> {
    let h = set.height();
    let tol = 1e-12;
    set.degrees()
        .iter()
        .enumerate()
        .filter(|(_, &d)| (d - h).abs() <= tol)
        .map(|(i, _)| i)
        .collect()
}

fn mean_of_maxima(set: &FuzzySet) -> f64 {
    let idx = maxima_indices(set);
    let sum: f64 = idx.iter().map(|&i| set.x_at(i)).sum();
    sum / idx.len() as f64
}

fn smallest_of_maxima(set: &FuzzySet) -> f64 {
    let idx = maxima_indices(set);
    set.x_at(idx[0])
}

fn largest_of_maxima(set: &FuzzySet) -> f64 {
    let idx = maxima_indices(set);
    set.x_at(*idx.last().expect("non-empty set has at least one maximum"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipFunction;
    use crate::norms::SNorm;

    fn tri_set(a: f64, b: f64, c: f64) -> FuzzySet {
        FuzzySet::from_membership(
            &MembershipFunction::triangular(a, b, c).unwrap(),
            0.0,
            10.0,
            1001,
        )
        .unwrap()
    }

    #[test]
    fn centroid_of_symmetric_triangle_is_its_peak() {
        let s = tri_set(2.0, 5.0, 8.0);
        let c = Defuzzifier::Centroid.defuzzify(&s, "x").unwrap();
        assert!((c - 5.0).abs() < 0.01);
    }

    #[test]
    fn centroid_of_asymmetric_triangle_leans_toward_fat_side() {
        let s = tri_set(0.0, 1.0, 10.0);
        let c = Defuzzifier::Centroid.defuzzify(&s, "x").unwrap();
        assert!(c > 1.0 && c < 5.5, "centroid {c}");
    }

    #[test]
    fn bisector_of_symmetric_triangle() {
        let s = tri_set(2.0, 5.0, 8.0);
        let b = Defuzzifier::Bisector.defuzzify(&s, "x").unwrap();
        assert!((b - 5.0).abs() < 0.05);
    }

    #[test]
    fn maxima_methods_on_plateau() {
        // Clip a triangle so its maximum is a plateau from 4 to 6.
        let mut s = FuzzySet::empty(0.0, 10.0, 1001).unwrap();
        s.aggregate_clipped(
            &MembershipFunction::triangular(0.0, 5.0, 10.0).unwrap(),
            0.8,
            SNorm::Maximum,
        );
        let mom = Defuzzifier::MeanOfMaxima.defuzzify(&s, "x").unwrap();
        let som = Defuzzifier::SmallestOfMaxima.defuzzify(&s, "x").unwrap();
        let lom = Defuzzifier::LargestOfMaxima.defuzzify(&s, "x").unwrap();
        assert!((mom - 5.0).abs() < 0.05);
        assert!((som - 4.0).abs() < 0.05);
        assert!((lom - 6.0).abs() < 0.05);
        assert!(som <= mom && mom <= lom);
    }

    #[test]
    fn empty_set_is_an_error() {
        let s = FuzzySet::empty(0.0, 10.0, 101).unwrap();
        for d in [
            Defuzzifier::Centroid,
            Defuzzifier::Bisector,
            Defuzzifier::MeanOfMaxima,
            Defuzzifier::SmallestOfMaxima,
            Defuzzifier::LargestOfMaxima,
        ] {
            assert!(matches!(
                d.defuzzify(&s, "out"),
                Err(FuzzyError::EmptyOutput { .. })
            ));
        }
    }

    #[test]
    fn defuzzify_or_falls_back() {
        let s = FuzzySet::empty(0.0, 10.0, 101).unwrap();
        assert_eq!(Defuzzifier::Centroid.defuzzify_or(&s, -1.0), -1.0);
        let t = tri_set(2.0, 5.0, 8.0);
        assert!((Defuzzifier::Centroid.defuzzify_or(&t, -1.0) - 5.0).abs() < 0.01);
    }

    #[test]
    fn all_methods_stay_within_universe() {
        let s = tri_set(0.0, 0.5, 1.5);
        for d in [
            Defuzzifier::Centroid,
            Defuzzifier::Bisector,
            Defuzzifier::MeanOfMaxima,
            Defuzzifier::SmallestOfMaxima,
            Defuzzifier::LargestOfMaxima,
        ] {
            let v = d.defuzzify(&s, "x").unwrap();
            assert!((0.0..=10.0).contains(&v), "{d:?} -> {v}");
        }
    }

    #[test]
    fn default_is_centroid() {
        assert_eq!(Defuzzifier::default(), Defuzzifier::Centroid);
    }
}
