//! Probabilistic demand projection.
//!
//! For one mobile, [`project_demand`] computes the probability that the
//! mobile is active *and located in each cell of its shadow cluster* during
//! each future time slot.  The model follows the structure of Levine et
//! al.: the probability of still being active decays with the assumed call
//! holding time, the probability of having left the home cell grows with
//! speed, and the probability mass that leaves the home cell is distributed
//! over the neighbouring cells according to how well their direction agrees
//! with the mobile's heading.

use crate::config::SccConfig;
use cellsim::geometry::{angle_difference, CellGrid, CellId};
use serde::{Deserialize, Serialize};

/// The projected probability of one mobile being in one cell during one
/// time slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellProbability {
    /// The cell the probability refers to.
    pub cell: CellId,
    /// Slot index (0 = the slot starting now).
    pub slot: usize,
    /// Probability of the mobile being active in `cell` during `slot`.
    pub probability: f64,
}

/// Project one mobile's activity probabilities over its shadow cluster.
///
/// * `home` — the mobile's current cell.
/// * `speed_kmh` / `heading_angle_deg` — the mobile's speed and the angle
///   between its heading and the direction *toward the home base station*
///   (the same convention as FLC1's `An` input: 0° = heading at the BS,
///   ±180° = heading straight away from it).
/// * `grid` — the cell layout that bounds the cluster.
///
/// The returned probabilities satisfy: for every slot, the sum over cells
/// is at most 1 (it is below 1 once call-completion probability mass has
/// been removed).
#[must_use]
pub fn project_demand(
    config: &SccConfig,
    grid: &CellGrid,
    home: CellId,
    speed_kmh: f64,
    heading_angle_deg: f64,
) -> Vec<CellProbability> {
    let slots = config.slots.max(1);
    let mut out = Vec::with_capacity(slots * 7);
    let cluster = grid.cluster(&home, config.cluster_radius);
    let neighbors = grid.bordering_neighbors(&home);

    // Probability that the call is still active after t seconds, assuming
    // exponentially distributed holding times.
    let survival = |t: f64| {
        if config.assumed_mean_holding_s <= 0.0 {
            0.0
        } else {
            (-t / config.assumed_mean_holding_s).exp()
        }
    };
    // Expected time to cross a cell at this speed; the probability of
    // having left the home cell by time t follows an exponential ramp in
    // t / crossing_time.
    let speed_mps = (speed_kmh.max(0.0)) / 3.6;
    let crossing_time = if speed_mps <= 1e-9 {
        f64::INFINITY
    } else {
        config.cell_radius_m.max(1.0) / speed_mps
    };

    // Direction weights for the bordering neighbours: neighbours aligned
    // with the mobile's absolute heading get most of the leaving mass.
    // The mobile's absolute heading relative to the grid is reconstructed
    // from the angle-to-station convention by treating the direction
    // "toward the home BS" as the reference axis; a mobile heading straight
    // at its own BS (angle 0) is not about to leave, so the *leaving*
    // probability is additionally scaled by how much the heading points
    // away from the BS.
    let away_factor = (heading_angle_deg.abs() / 180.0).clamp(0.0, 1.0);
    let neighbor_weights: Vec<f64> = neighbors
        .iter()
        .map(|n| {
            let home_center = grid.center_of(&home);
            let bearing = home_center.bearing_to(&grid.center_of(n));
            // Neighbours whose direction differs least from the mobile's
            // outward heading receive the largest weight.  The outward
            // heading is the BS-relative angle mapped onto the grid with
            // the BS direction as 180° (i.e. heading away = 0° difference
            // from the outward radial).
            let outward = 180.0 - heading_angle_deg.abs();
            let diff = angle_difference(bearing, outward).abs();
            (1.0 - diff / 180.0).max(0.05)
        })
        .collect();
    let weight_sum: f64 = neighbor_weights.iter().sum();

    for slot in 0..slots {
        let t_mid = (slot as f64 + 0.5) * config.slot_duration_s;
        let p_active = survival(t_mid);
        let p_left_home = if crossing_time.is_infinite() {
            0.0
        } else {
            (1.0 - (-t_mid / crossing_time).exp()) * away_factor
        };
        let p_home = p_active * (1.0 - p_left_home);
        out.push(CellProbability {
            cell: home,
            slot,
            probability: p_home,
        });
        if neighbors.is_empty() || weight_sum <= 0.0 {
            continue;
        }
        let p_out = p_active * p_left_home;
        for (n, w) in neighbors.iter().zip(&neighbor_weights) {
            let p = p_out * w / weight_sum;
            if p > 1e-9 && cluster.contains(n) {
                out.push(CellProbability {
                    cell: *n,
                    slot,
                    probability: p,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> CellGrid {
        CellGrid::new(2, 1000.0)
    }

    #[test]
    fn probabilities_are_valid_and_sum_to_at_most_one_per_slot() {
        let cfg = SccConfig::paper_default();
        let g = grid();
        let proj = project_demand(&cfg, &g, CellId::origin(), 60.0, 120.0);
        for slot in 0..cfg.slots {
            let sum: f64 = proj
                .iter()
                .filter(|p| p.slot == slot)
                .map(|p| p.probability)
                .sum();
            assert!(sum <= 1.0 + 1e-9, "slot {slot} sums to {sum}");
            assert!(sum >= 0.0);
        }
        for p in &proj {
            assert!(p.probability >= 0.0 && p.probability <= 1.0);
        }
    }

    #[test]
    fn home_probability_decays_over_slots() {
        let cfg = SccConfig::paper_default();
        let g = grid();
        let proj = project_demand(&cfg, &g, CellId::origin(), 60.0, 150.0);
        let home: Vec<f64> = (0..cfg.slots)
            .map(|s| {
                proj.iter()
                    .find(|p| p.slot == s && p.cell == CellId::origin())
                    .map(|p| p.probability)
                    .unwrap_or(0.0)
            })
            .collect();
        for w in home.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "home probability should not grow: {home:?}"
            );
        }
        assert!(home[0] > 0.5);
    }

    #[test]
    fn stationary_user_never_projects_into_neighbors() {
        let cfg = SccConfig::paper_default();
        let g = grid();
        let proj = project_demand(&cfg, &g, CellId::origin(), 0.0, 150.0);
        assert!(proj.iter().all(|p| p.cell == CellId::origin()));
    }

    #[test]
    fn user_heading_toward_bs_stays_in_home_cell() {
        let cfg = SccConfig::paper_default();
        let g = grid();
        // angle 0 = straight at the BS -> away_factor 0 -> no leaving mass.
        let proj = project_demand(&cfg, &g, CellId::origin(), 120.0, 0.0);
        assert!(proj.iter().all(|p| p.cell == CellId::origin()));
    }

    #[test]
    fn fast_user_heading_away_projects_more_into_neighbors_than_slow() {
        let cfg = SccConfig::paper_default();
        let g = grid();
        let neighbor_mass = |speed: f64| -> f64 {
            project_demand(&cfg, &g, CellId::origin(), speed, 180.0)
                .iter()
                .filter(|p| p.cell != CellId::origin())
                .map(|p| p.probability)
                .sum()
        };
        assert!(neighbor_mass(120.0) > neighbor_mass(10.0));
    }

    #[test]
    fn single_cell_grid_keeps_all_mass_at_home() {
        let cfg = SccConfig::paper_default();
        let g = CellGrid::single_cell(1000.0);
        let proj = project_demand(&cfg, &g, CellId::origin(), 120.0, 180.0);
        assert!(!proj.is_empty());
        assert!(proj.iter().all(|p| p.cell == CellId::origin()));
    }

    #[test]
    fn zero_holding_time_means_no_projection_mass() {
        let mut cfg = SccConfig::paper_default();
        cfg.assumed_mean_holding_s = 0.0;
        let proj = project_demand(&cfg, &grid(), CellId::origin(), 50.0, 90.0);
        assert!(proj.iter().all(|p| p.probability == 0.0));
    }

    #[test]
    fn projection_covers_every_requested_slot() {
        let cfg = SccConfig::paper_default().with_slots(4);
        let proj = project_demand(&cfg, &grid(), CellId::origin(), 30.0, 45.0);
        for s in 0..4 {
            assert!(proj.iter().any(|p| p.slot == s));
        }
    }
}
