//! Shadow clusters.
//!
//! A [`ShadowCluster`] is the per-connection record the SCC controller
//! keeps: which cells the connection influences, with what probability per
//! future slot, and how much bandwidth each unit of probability represents.

use crate::config::SccConfig;
use crate::projection::{project_demand, CellProbability};
use cellsim::geometry::{CellGrid, CellId};
use cellsim::Bandwidth;
use serde::{Deserialize, Serialize};

/// The probabilistic influence region of one admitted (or tentative)
/// connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowCluster {
    /// The connection this cluster belongs to.
    pub connection_id: u64,
    /// The connection's home cell at the time the cluster was built.
    pub home: CellId,
    /// Reserved bandwidth of the connection (BU).
    pub bandwidth: Bandwidth,
    /// Per-cell, per-slot activity probabilities.
    pub probabilities: Vec<CellProbability>,
}

impl ShadowCluster {
    /// Build the shadow cluster of a connection from its kinematic state.
    ///
    /// `angle_deg` uses the FLC1 convention (0° = heading straight at the
    /// home base station).
    #[must_use]
    pub fn build(
        config: &SccConfig,
        grid: &CellGrid,
        connection_id: u64,
        home: CellId,
        bandwidth: Bandwidth,
        speed_kmh: f64,
        angle_deg: f64,
    ) -> Self {
        let probabilities = project_demand(config, grid, home, speed_kmh, angle_deg);
        Self {
            connection_id,
            home,
            bandwidth,
            probabilities,
        }
    }

    /// The projected bandwidth demand (BU, fractional) this connection puts
    /// on `cell` during `slot`.
    #[must_use]
    pub fn demand_on(&self, cell: CellId, slot: usize) -> f64 {
        self.probabilities
            .iter()
            .filter(|p| p.cell == cell && p.slot == slot)
            .map(|p| p.probability * f64::from(self.bandwidth))
            .sum()
    }

    /// Every cell this cluster projects any demand onto.
    #[must_use]
    pub fn cells(&self) -> Vec<CellId> {
        let mut cells: Vec<CellId> = self.probabilities.iter().map(|p| p.cell).collect();
        cells.sort();
        cells.dedup();
        cells
    }

    /// Total projected demand summed over cells for a given slot (BU).
    #[must_use]
    pub fn total_demand_in_slot(&self, slot: usize) -> f64 {
        self.probabilities
            .iter()
            .filter(|p| p.slot == slot)
            .map(|p| p.probability * f64::from(self.bandwidth))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(speed: f64, angle: f64) -> ShadowCluster {
        let cfg = SccConfig::paper_default();
        let grid = CellGrid::new(2, 1000.0);
        ShadowCluster::build(&cfg, &grid, 42, CellId::origin(), 10, speed, angle)
    }

    #[test]
    fn build_records_identity() {
        let c = cluster(60.0, 120.0);
        assert_eq!(c.connection_id, 42);
        assert_eq!(c.home, CellId::origin());
        assert_eq!(c.bandwidth, 10);
        assert!(!c.probabilities.is_empty());
    }

    #[test]
    fn demand_scales_with_bandwidth() {
        let cfg = SccConfig::paper_default();
        let grid = CellGrid::new(2, 1000.0);
        let small = ShadowCluster::build(&cfg, &grid, 1, CellId::origin(), 1, 60.0, 90.0);
        let large = ShadowCluster::build(&cfg, &grid, 2, CellId::origin(), 10, 60.0, 90.0);
        let ds = small.demand_on(CellId::origin(), 0);
        let dl = large.demand_on(CellId::origin(), 0);
        assert!(dl > ds * 9.0 && dl < ds * 11.0);
    }

    #[test]
    fn total_demand_never_exceeds_bandwidth() {
        let c = cluster(120.0, 180.0);
        for slot in 0..SccConfig::paper_default().slots {
            assert!(c.total_demand_in_slot(slot) <= f64::from(c.bandwidth) + 1e-9);
        }
    }

    #[test]
    fn cells_always_include_home() {
        let c = cluster(100.0, 170.0);
        assert!(c.cells().contains(&CellId::origin()));
        // A mobile heading away at speed spreads into at least one neighbour.
        assert!(c.cells().len() > 1);
    }

    #[test]
    fn stationary_cluster_is_home_only() {
        let c = cluster(0.0, 170.0);
        assert_eq!(c.cells(), vec![CellId::origin()]);
        assert_eq!(c.demand_on(CellId::new(1, 0), 0), 0.0);
    }
}
