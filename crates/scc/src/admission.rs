//! The SCC admission controller.
//!
//! [`SccAdmission`] implements [`cellsim::AdmissionController`]: every
//! request is turned into a tentative [`ShadowCluster`]; the request is
//! admitted only if the tentative cluster's projected demand fits within
//! every touched cell's capacity budget on top of the demand already
//! projected by the active clusters.  New calls are additionally held to a
//! reduced budget (the reservation for predicted handoff demand), which is
//! what makes SCC deny new requests even when the home cell still has free
//! bandwidth — the behaviour the FACS paper contrasts itself against.

use crate::cluster::ShadowCluster;
use crate::config::SccConfig;
use crate::estimator::LoadEstimator;
use cellsim::geometry::CellGrid;
use cellsim::shard::BoxedController;
use cellsim::sim::{AdmissionController, AdmissionDecision, AdmissionRequest};
use cellsim::station::BaseStation;

/// Shadow-Cluster-Concept admission controller.
#[derive(Debug, Clone)]
pub struct SccAdmission {
    config: SccConfig,
    grid: CellGrid,
    estimator: LoadEstimator,
}

impl SccAdmission {
    /// Build a controller; the internal (virtual) grid spans the configured
    /// cluster radius so neighbour-cell reservations are tracked even when
    /// the simulator only materialises the home cell.
    #[must_use]
    pub fn new(config: SccConfig) -> Self {
        let grid = CellGrid::new(config.cluster_radius.max(1), config.cell_radius_m);
        Self {
            config,
            grid,
            estimator: LoadEstimator::new(),
        }
    }

    /// The paper-default controller behind the [`AdmissionController`]
    /// trait object — the factory shape scenario specs build from.
    #[must_use]
    pub fn boxed_paper_default() -> BoxedController {
        Box::new(Self::new(SccConfig::paper_default()))
    }

    /// The controller's configuration.
    #[must_use]
    pub fn config(&self) -> &SccConfig {
        &self.config
    }

    /// Number of shadow clusters currently registered.
    #[must_use]
    pub fn active_clusters(&self) -> usize {
        self.estimator.active_clusters()
    }

    /// Read-only access to the load estimator (used by the benches to
    /// report projected load).
    #[must_use]
    pub fn estimator(&self) -> &LoadEstimator {
        &self.estimator
    }

    fn tentative_cluster(&self, request: &AdmissionRequest) -> ShadowCluster {
        ShadowCluster::build(
            &self.config,
            &self.grid,
            request.id,
            request.cell,
            request.bandwidth,
            request.speed_kmh,
            request.angle_deg,
        )
    }
}

impl Default for SccAdmission {
    fn default() -> Self {
        Self::new(SccConfig::paper_default())
    }
}

impl AdmissionController for SccAdmission {
    fn name(&self) -> &'static str {
        "scc"
    }

    fn decide(&mut self, request: &AdmissionRequest, station: &BaseStation) -> AdmissionDecision {
        let tentative = self.tentative_cluster(request);
        // Handoffs of on-going calls may consume the full capacity; new
        // calls only the reserved-down budget.
        let capacity = f64::from(station.capacity().max(self.config.cell_capacity));
        let budget = if request.is_handoff {
            capacity
        } else {
            capacity * (1.0 - self.config.new_call_reservation)
        };
        // The physical occupancy of the home station also bounds admission:
        // projected load is probabilistic and can momentarily sit below the
        // deterministic occupancy of already-admitted calls.
        let physical_after = f64::from(station.occupied() + request.bandwidth);
        let fits_projection = self.estimator.fits_within(&tentative, budget);
        let fits_physical = physical_after <= budget.max(f64::from(request.bandwidth));
        let margin = budget - physical_after.max(self.estimator.load_on(request.cell, 0));
        if fits_projection && fits_physical {
            AdmissionDecision::accept(margin)
        } else {
            AdmissionDecision::reject(margin.min(-0.0))
        }
    }

    fn on_admitted(&mut self, request: &AdmissionRequest, _station: &BaseStation) {
        let cluster = self.tentative_cluster(request);
        self.estimator.register(cluster);
    }

    fn on_released(&mut self, connection_id: u64, _station: &BaseStation) {
        self.estimator.remove(connection_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim::geometry::CellId;
    use cellsim::sim::{SimConfig, Simulator};
    use cellsim::traffic::ServiceClass;

    fn request(
        id: u64,
        class: ServiceClass,
        speed: f64,
        angle: f64,
        handoff: bool,
    ) -> AdmissionRequest {
        AdmissionRequest {
            id,
            cell: CellId::origin(),
            time: 0.0,
            class,
            bandwidth: class.paper_bandwidth(),
            holding_time: 180.0,
            speed_kmh: speed,
            angle_deg: angle,
            distance_m: Some(300.0),
            is_handoff: handoff,
        }
    }

    #[test]
    fn empty_station_accepts_new_calls() {
        let mut scc = SccAdmission::default();
        let station = BaseStation::paper_default();
        let d = scc.decide(
            &request(1, ServiceClass::Video, 50.0, 30.0, false),
            &station,
        );
        assert!(d.accept);
        assert!(d.score > 0.0);
    }

    #[test]
    fn new_calls_are_limited_by_the_reservation_budget() {
        let mut scc = SccAdmission::new(SccConfig::paper_default().with_reservation(0.2));
        let mut station = BaseStation::paper_default();
        // Fill the station up to 30 BU of slow users and register them.
        let mut id = 0u64;
        while station.occupied() < 30 {
            id += 1;
            let req = request(id, ServiceClass::Video, 0.0, 90.0, false);
            station
                .admit(id, req.class, req.bandwidth, 0.0, 600.0, false)
                .unwrap();
            scc.on_admitted(&req, &station);
        }
        // Occupancy 30/40; the new-call budget is 32 BU so a 10-BU video
        // new call must be rejected while a 5-BU handoff is still accepted.
        let new_video = scc.decide(
            &request(100, ServiceClass::Video, 0.0, 90.0, false),
            &station,
        );
        assert!(!new_video.accept);
        let handoff_voice = scc.decide(
            &request(101, ServiceClass::Voice, 0.0, 90.0, true),
            &station,
        );
        assert!(handoff_voice.accept);
    }

    #[test]
    fn release_frees_projected_demand() {
        let mut scc = SccAdmission::default();
        let mut station = BaseStation::paper_default();
        let req = request(1, ServiceClass::Video, 0.0, 90.0, false);
        station
            .admit(1, req.class, req.bandwidth, 0.0, 60.0, false)
            .unwrap();
        scc.on_admitted(&req, &station);
        assert_eq!(scc.active_clusters(), 1);
        station.release(1).unwrap();
        scc.on_released(1, &station);
        assert_eq!(scc.active_clusters(), 0);
        assert_eq!(scc.estimator().load_on(CellId::origin(), 0), 0.0);
    }

    #[test]
    fn handoff_budget_is_full_capacity() {
        let cfg = SccConfig::paper_default().with_reservation(0.5);
        let mut scc = SccAdmission::new(cfg);
        let mut station = BaseStation::paper_default();
        // Occupy 20 BU (the new-call budget exactly).
        for id in 0..4u64 {
            let req = request(id, ServiceClass::Voice, 0.0, 90.0, false);
            station
                .admit(id, req.class, req.bandwidth, 0.0, 600.0, false)
                .unwrap();
            scc.on_admitted(&req, &station);
        }
        assert_eq!(station.occupied(), 20);
        let new_call = scc.decide(&request(50, ServiceClass::Text, 0.0, 0.0, false), &station);
        assert!(!new_call.accept, "new call should hit the 20-BU budget");
        let handoff = scc.decide(&request(51, ServiceClass::Text, 0.0, 0.0, true), &station);
        assert!(handoff.accept, "handoff may use the reserved headroom");
    }

    #[test]
    fn decide_batch_matches_sequential_decide_on_a_snapshot() {
        let mut scc = SccAdmission::default();
        let mut station = BaseStation::paper_default();
        // Seed non-trivial state: physical occupancy plus registered
        // clusters, so the batch spans accepts and both reject paths.
        for id in 0..3u64 {
            let req = request(id, ServiceClass::Video, 20.0 * id as f64, 90.0, false);
            station
                .admit(id, req.class, req.bandwidth, 0.0, 600.0, false)
                .unwrap();
            scc.on_admitted(&req, &station);
        }
        let requests: Vec<AdmissionRequest> = (0..16)
            .map(|i| {
                request(
                    100 + i,
                    [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video]
                        [(i % 3) as usize],
                    7.5 * i as f64,
                    22.5 * i as f64 - 180.0,
                    i % 4 == 0,
                )
            })
            .collect();
        let mut batch = Vec::new();
        scc.decide_batch(&requests, &station, &mut batch);
        assert_eq!(batch.len(), requests.len());
        for (r, d) in requests.iter().zip(&batch) {
            assert_eq!(*d, scc.decide(r, &station), "diverged on request {}", r.id);
        }
        assert!(batch.iter().any(|d| d.accept));
        assert!(batch.iter().any(|d| !d.accept));
    }

    #[test]
    fn integrates_with_the_simulator() {
        let mut controller = SccAdmission::default();
        let mut sim = Simulator::new(SimConfig::paper_default().with_seed(77));
        let report = sim.run_batch(&mut controller, 80);
        assert_eq!(report.offered, 80);
        assert!(report.accepted > 0);
        assert!(report.accepted < 80);
        assert_eq!(report.controller, "scc");
        // The reservation keeps the physical occupancy at or below ~32 BU
        // (one in-flight request of slack).
        let station = sim.station(&CellId::origin()).unwrap();
        assert!(station.occupied() <= 32 + 10);
    }

    #[test]
    fn scc_admits_less_bandwidth_than_always_accept() {
        // SCC may admit *more calls* than AlwaysAccept (rejecting a large
        // video early leaves room for several small texts later), but its
        // reservation means it always commits less total bandwidth.
        let n = 80;
        let mut scc = SccAdmission::default();
        let mut sim_scc = Simulator::new(SimConfig::paper_default().with_seed(5));
        let scc_report = sim_scc.run_batch(&mut scc, n);

        let mut always = cellsim::sim::AlwaysAccept;
        let mut sim_always = Simulator::new(SimConfig::paper_default().with_seed(5));
        let always_report = sim_always.run_batch(&mut always, n);

        assert!(
            scc_report.metrics.bandwidth_admitted() <= always_report.metrics.bandwidth_admitted(),
            "scc {} > always {}",
            scc_report.metrics.bandwidth_admitted(),
            always_report.metrics.bandwidth_admitted()
        );
    }
}
