//! Shadow Cluster Concept (SCC) call-admission baseline.
//!
//! This crate implements the resource-estimation and call-admission
//! algorithm of Levine, Akyildiz and Naghshineh, *"A Resource Estimation and
//! Call Admission Algorithm for Wireless Multimedia Networks Using the
//! Shadow Cluster Concept"* (IEEE/ACM ToN 1997) — the baseline the FACS
//! paper compares against in its Fig. 7.
//!
//! # The algorithm in brief
//!
//! Every admitted mobile exerts an "influence" on the cells around its
//! current location and along its direction of travel: its **shadow
//! cluster**.  The influence on a cell is the probability that the mobile
//! will be active *in that cell* during a future time slot, multiplied by
//! its bandwidth demand.  Each base station sums these probabilistic
//! demands over all mobiles whose shadow cluster covers it; the resulting
//! per-slot *projected load* is the amount of bandwidth the station must
//! keep available for on-going calls that may hand in.  A new call request
//! is admitted only if, for every cell of its tentative shadow cluster and
//! every future slot, the already-projected load plus the tentative call's
//! own projected demand stays within the cell's capacity budget.
//!
//! # What is configurable
//!
//! The FACS paper gives no SCC parameters, so [`SccConfig`] exposes the
//! knobs of the published algorithm (cluster radius, number/duration of
//! time slots, the call-survival model) plus the new-call reservation
//! margin that makes SCC deny new requests to protect predicted handoff
//! demand.  The defaults are the values used for the Fig. 7 reproduction
//! and are documented in `DESIGN.md`.
//!
//! ```
//! use cellsim::{AdmissionController, BaseStation, SimConfig, Simulator};
//! use scc::{SccAdmission, SccConfig};
//!
//! let mut controller = SccAdmission::new(SccConfig::default());
//! let mut sim = Simulator::new(SimConfig::paper_default());
//! let report = sim.run_batch(&mut controller, 40);
//! assert!(report.accepted > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod cluster;
pub mod config;
pub mod estimator;
pub mod projection;

pub use admission::SccAdmission;
pub use cluster::ShadowCluster;
pub use config::SccConfig;
pub use estimator::LoadEstimator;
pub use projection::{project_demand, CellProbability};
