//! Per-cell projected-load accounting.
//!
//! The [`LoadEstimator`] is each base station's view of the probabilistic
//! demand projected onto it by every active shadow cluster.  Adding and
//! removing clusters keeps the per-`(cell, slot)` totals up to date so the
//! admission test is O(cluster size) rather than O(active connections).

use crate::cluster::ShadowCluster;
use cellsim::geometry::CellId;
use std::collections::HashMap;

/// Aggregated projected load per cell and time slot.
#[derive(Debug, Clone, Default)]
pub struct LoadEstimator {
    /// `(cell, slot)` → projected demand in (fractional) bandwidth units.
    load: HashMap<(CellId, usize), f64>,
    /// Registered clusters by connection id.
    clusters: HashMap<u64, ShadowCluster>,
}

impl LoadEstimator {
    /// An empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered clusters.
    #[must_use]
    pub fn active_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// `true` if a cluster is registered for `connection_id`.
    #[must_use]
    pub fn contains(&self, connection_id: u64) -> bool {
        self.clusters.contains_key(&connection_id)
    }

    /// The projected load on `cell` during `slot` (BU, fractional).
    #[must_use]
    pub fn load_on(&self, cell: CellId, slot: usize) -> f64 {
        self.load.get(&(cell, slot)).copied().unwrap_or(0.0)
    }

    /// Register a cluster, adding its demand to the per-cell totals.
    /// Registering the same connection twice replaces the previous cluster.
    pub fn register(&mut self, cluster: ShadowCluster) {
        if self.clusters.contains_key(&cluster.connection_id) {
            self.remove(cluster.connection_id);
        }
        for p in &cluster.probabilities {
            *self.load.entry((p.cell, p.slot)).or_insert(0.0) +=
                p.probability * f64::from(cluster.bandwidth);
        }
        self.clusters.insert(cluster.connection_id, cluster);
    }

    /// Remove the cluster of `connection_id`, subtracting its demand.
    /// Unknown ids are ignored.
    pub fn remove(&mut self, connection_id: u64) {
        let Some(cluster) = self.clusters.remove(&connection_id) else {
            return;
        };
        for p in &cluster.probabilities {
            if let Some(v) = self.load.get_mut(&(p.cell, p.slot)) {
                *v -= p.probability * f64::from(cluster.bandwidth);
                if *v < 1e-9 {
                    *v = 0.0;
                }
            }
        }
        self.load.retain(|_, v| *v > 0.0);
    }

    /// Would admitting `candidate` keep the projected load within `budget`
    /// bandwidth units in every cell/slot the candidate touches?
    #[must_use]
    pub fn fits_within(&self, candidate: &ShadowCluster, budget: f64) -> bool {
        for p in &candidate.probabilities {
            let projected =
                self.load_on(p.cell, p.slot) + p.probability * f64::from(candidate.bandwidth);
            if projected > budget + 1e-9 {
                return false;
            }
        }
        true
    }

    /// The maximum projected load over all slots for a given cell.
    #[must_use]
    pub fn peak_load(&self, cell: CellId) -> f64 {
        self.load
            .iter()
            .filter(|((c, _), _)| *c == cell)
            .map(|(_, v)| *v)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SccConfig;
    use cellsim::geometry::CellGrid;

    fn cluster(id: u64, bw: u32, speed: f64, angle: f64) -> ShadowCluster {
        let cfg = SccConfig::paper_default();
        let grid = CellGrid::new(2, 1000.0);
        ShadowCluster::build(&cfg, &grid, id, CellId::origin(), bw, speed, angle)
    }

    #[test]
    fn register_accumulates_and_remove_restores() {
        let mut est = LoadEstimator::new();
        assert_eq!(est.load_on(CellId::origin(), 0), 0.0);
        let c1 = cluster(1, 10, 50.0, 90.0);
        let c2 = cluster(2, 5, 20.0, 30.0);
        let d1 = c1.demand_on(CellId::origin(), 0);
        let d2 = c2.demand_on(CellId::origin(), 0);
        est.register(c1);
        est.register(c2);
        assert_eq!(est.active_clusters(), 2);
        assert!((est.load_on(CellId::origin(), 0) - (d1 + d2)).abs() < 1e-9);
        est.remove(1);
        assert!((est.load_on(CellId::origin(), 0) - d2).abs() < 1e-9);
        est.remove(2);
        assert_eq!(est.active_clusters(), 0);
        assert_eq!(est.load_on(CellId::origin(), 0), 0.0);
    }

    #[test]
    fn removing_unknown_id_is_a_noop() {
        let mut est = LoadEstimator::new();
        est.register(cluster(1, 10, 50.0, 90.0));
        est.remove(999);
        assert_eq!(est.active_clusters(), 1);
    }

    #[test]
    fn double_register_replaces() {
        let mut est = LoadEstimator::new();
        est.register(cluster(1, 10, 50.0, 90.0));
        let first = est.load_on(CellId::origin(), 0);
        est.register(cluster(1, 10, 50.0, 90.0));
        assert_eq!(est.active_clusters(), 1);
        assert!((est.load_on(CellId::origin(), 0) - first).abs() < 1e-9);
        assert!(est.contains(1));
    }

    #[test]
    fn fits_within_budget_boundary() {
        let mut est = LoadEstimator::new();
        // Fill with three 10-BU slow users (nearly all mass stays at home).
        for id in 0..3 {
            est.register(cluster(id, 10, 0.0, 90.0));
        }
        let candidate = cluster(99, 10, 0.0, 90.0);
        // Peak projected load is just under 30; a 10-BU candidate fits a
        // 40-BU budget but not a 32-BU one.
        assert!(est.fits_within(&candidate, 40.0));
        assert!(!est.fits_within(&candidate, 32.0));
    }

    #[test]
    fn peak_load_is_max_over_slots() {
        let mut est = LoadEstimator::new();
        est.register(cluster(1, 10, 0.0, 90.0));
        let peak = est.peak_load(CellId::origin());
        assert!(peak > 0.0);
        assert!(peak <= 10.0 + 1e-9);
        assert_eq!(est.peak_load(CellId::new(5, 5)), 0.0);
    }
}
