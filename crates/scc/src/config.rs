//! SCC configuration.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the Shadow Cluster algorithm.
///
/// The FACS paper does not specify an SCC configuration, so these defaults
/// were chosen to follow the published algorithm (Levine et al. 1997) and
/// are documented as a substitution in `DESIGN.md`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SccConfig {
    /// Radius of every shadow cluster in cells (1 = home cell plus its six
    /// bordering neighbours, 2 adds the non-bordering ring).
    pub cluster_radius: u32,
    /// Number of future time slots projected.
    pub slots: usize,
    /// Duration of one projection slot in seconds.
    pub slot_duration_s: f64,
    /// Mean call holding time assumed by the survival model (seconds).
    pub assumed_mean_holding_s: f64,
    /// Cell radius assumed when converting speed into cell-crossing
    /// probability (metres).
    pub cell_radius_m: f64,
    /// Fraction of each cell's capacity withheld from *new* calls so that
    /// predicted handoff demand can be honoured (handoff requests may use
    /// the full capacity).  This is the SCC reservation behaviour the FACS
    /// paper highlights: "BSs reserve resources by denying network access
    /// to new call requests".
    pub new_call_reservation: f64,
    /// Capacity of every (virtual) cell in bandwidth units, used when the
    /// simulator only materialises the home cell.
    pub cell_capacity: u32,
}

impl SccConfig {
    /// The configuration used for the paper's Fig. 7 reproduction.
    ///
    /// The new-call reservation of 0.3 models the aggregate demand the
    /// surrounding cells' active mobiles project onto the home cell in the
    /// paper's (unspecified) multi-cell SCC deployment; it is the
    /// calibration that reproduces Fig. 7's crossover (see EXPERIMENTS.md).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            cluster_radius: 2,
            slots: 6,
            slot_duration_s: 10.0,
            assumed_mean_holding_s: 180.0,
            cell_radius_m: 1000.0,
            new_call_reservation: 0.3,
            cell_capacity: 40,
        }
    }

    /// Override the new-call reservation fraction (clamped to `[0, 0.95]`).
    #[must_use]
    pub fn with_reservation(mut self, fraction: f64) -> Self {
        self.new_call_reservation = fraction.clamp(0.0, 0.95);
        self
    }

    /// Override the per-cell capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: u32) -> Self {
        self.cell_capacity = capacity;
        self
    }

    /// Override the number of projection slots (at least 1).
    #[must_use]
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots.max(1);
        self
    }

    /// The capacity budget available to new calls (BU).
    #[must_use]
    pub fn new_call_budget(&self) -> f64 {
        f64::from(self.cell_capacity) * (1.0 - self.new_call_reservation)
    }
}

impl Default for SccConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let c = SccConfig::paper_default();
        assert_eq!(c.cluster_radius, 2);
        assert_eq!(c.slots, 6);
        assert_eq!(c.cell_capacity, 40);
        assert!((c.new_call_budget() - 28.0).abs() < 1e-9);
    }

    #[test]
    fn builders_clamp() {
        let c = SccConfig::default().with_reservation(2.0);
        assert!((c.new_call_reservation - 0.95).abs() < 1e-12);
        let c = SccConfig::default().with_reservation(-1.0);
        assert_eq!(c.new_call_reservation, 0.0);
        let c = SccConfig::default().with_slots(0);
        assert_eq!(c.slots, 1);
        let c = SccConfig::default().with_capacity(100);
        assert_eq!(c.cell_capacity, 100);
    }

    #[test]
    fn zero_reservation_budget_is_full_capacity() {
        let c = SccConfig::default().with_reservation(0.0);
        assert!((c.new_call_budget() - 40.0).abs() < 1e-9);
    }
}
