//! Highway handoff scenario: fast users crossing a 19-cell network.
//!
//! ```text
//! cargo run --release --example highway_handoff
//! ```
//!
//! The paper's motivation for prioritising on-going connections is that
//! dropping an active call at a handoff is far worse than blocking a new
//! one.  This example runs the built-in `highway-handoff` scenario — a
//! multi-cell network with small cells and fast (vehicular) users, so
//! admitted calls hand off several times during their lifetime — through
//! the `facs-sweep` engine and compares how well each admission policy
//! protects on-going calls: the dropping probability and the handoff
//! acceptance ratio, with a 95 % confidence interval over the replications.

use facs_suite::prelude::*;

fn main() {
    // The whole experiment is one declarative value from the built-in
    // library; trim the load axis so the example runs in a few seconds.
    let spec = builtin("highway-handoff")
        .expect("highway-handoff is built in")
        .with_load_points(vec![2000])
        .with_replications(3);

    println!(
        "Highway handoff scenario: 19 cells, 60-120 km/h users, {} requests, {} replications\n",
        spec.load_points[0], spec.replications
    );

    let report = SweepRunner::new()
        .run(&spec)
        .expect("built-in scenarios are valid");

    println!(
        "{:<16} {:>16}  {:>18}  {:>18}",
        "controller", "acceptance", "drop probability", "handoff acceptance"
    );
    for curve in &report.curves {
        let point = &curve.points[0];
        let (handoffs_offered, handoffs_accepted, _) = point.merged.handoffs();
        let handoff_acceptance = if handoffs_offered == 0 {
            1.0
        } else {
            handoffs_accepted as f64 / handoffs_offered as f64
        };
        println!(
            "{:<16} {:>8.1}% ± {:>3.1}%  {:>8.4} ± {:>6.4}  {:>17.1}%",
            curve.controller,
            point.acceptance.mean,
            point.acceptance.ci95_hi - point.acceptance.mean,
            point.dropping.mean,
            point.dropping.ci95_hi - point.dropping.mean,
            100.0 * handoff_acceptance,
        );
    }

    println!(
        "\nLower dropping probability means better QoS protection for on-going \
         connections — the paper's headline claim for FACS-P.  Edit the spec \
         (`sweep --print-spec highway-handoff`) to try other cell sizes or mixes."
    );
}
