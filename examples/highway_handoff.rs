//! Highway handoff scenario: fast users crossing a 19-cell network.
//!
//! ```text
//! cargo run --release --example highway_handoff
//! ```
//!
//! The paper's motivation for prioritising on-going connections is that
//! dropping an active call at a handoff is far worse than blocking a new
//! one.  This example builds a multi-cell network with small cells and
//! fast (vehicular) users, so admitted calls hand off several times during
//! their lifetime, and compares how well each admission policy protects
//! them: the dropping probability and the handoff acceptance ratio.

use facs_suite::prelude::*;

fn run(label: &str, controller: &mut dyn AdmissionController, seed: u64) {
    // 19 hexagonal cells of 300 m radius, saturated vehicular traffic.
    let mut config = SimConfig::paper_default()
        .with_seed(seed)
        .with_grid_radius(2);
    config.cell_radius_m = 300.0;
    config.traffic = TrafficConfig {
        mean_interarrival_s: 1.0,
        mean_holding_s: 300.0,
        min_speed_kmh: 60.0,
        max_speed_kmh: 120.0,
        ..TrafficConfig::paper_default()
    };
    config.utilization_sample_interval_s = 60.0;

    let mut sim = Simulator::new(config);
    let report = sim.run_poisson(controller, 2000);
    let (handoffs_offered, handoffs_accepted, handoffs_failed) = report.metrics.handoffs();
    println!(
        "{label:<16} accepted {:>5.1}%  dropped {:>6.4}  handoffs {:>4}/{:<4} (failed {})  util {:>4.1}%",
        report.acceptance_percentage,
        report.dropping_probability,
        handoffs_accepted,
        handoffs_offered,
        handoffs_failed,
        100.0 * report.mean_utilization,
    );
}

fn main() {
    println!("Highway handoff scenario: 19 cells, 60-120 km/h users, saturated load\n");
    println!(
        "{:<16} {:>14}  {:>14}  {:>22}  {:>10}",
        "controller", "acceptance", "drop prob.", "handoffs accepted", "mean util"
    );

    let seed = 0xCAFE;
    run("facs-p", &mut FacsPController::paper_default(), seed);
    run("facs", &mut FacsController::paper_default(), seed);
    run(
        "scc",
        &mut SccAdmission::new(SccConfig::paper_default()),
        seed,
    );
    run("always-accept", &mut AlwaysAccept, seed);

    println!(
        "\nLower dropping probability means better QoS protection for on-going \
         connections — the paper's headline claim for FACS-P."
    );
}
