//! Robustness study: how do FACS / FACS-P / SCC degrade when cells fail?
//!
//! ```text
//! cargo run --release --example outage_study
//! ```
//!
//! The paper evaluates its controllers on a healthy network only.  This
//! example re-runs the 19-cell `highway-handoff` evaluation against the
//! `outage-wave` fault plan — a rolling wave of full cell outages across
//! the origin and its first ring plus a half-capacity degraded neighbour
//! (see `docs/FAULTS.md`) — and prints the acceptance and dropping curves
//! side by side.
//!
//! To make the comparison paired, the faulted sweep is run with the
//! healthy scenario's base seed: the seed derivation depends only on
//! `(base_seed, controller, load, replication)`, so both sweeps offer
//! bit-identical arrival sequences and every difference in the tables is
//! attributable to the fault plan alone.

use facs_suite::prelude::*;

/// Run one scenario and return its report.
fn run(spec: &ScenarioSpec) -> RunReport {
    eprintln!(
        "running {}: {} controllers x {} loads x {} reps ...",
        spec.name,
        spec.controllers.len(),
        spec.load_points.len(),
        spec.replications
    );
    SweepRunner::new().run(spec).expect("specs are valid")
}

fn curve<'a>(report: &'a RunReport, label: &str) -> &'a CurveReport {
    report
        .curves
        .iter()
        .find(|c| c.controller == label)
        .expect("controller is part of the scenario")
}

const CONTROLLERS: [&str; 3] = ["FACS-P", "FACS", "SCC"];

/// Print one metric (acceptance or dropping) for the shared trio, healthy
/// and faulted side by side.
fn print_table(
    healthy: &RunReport,
    faulted: &RunReport,
    title: &str,
    metric: impl Fn(&PointReport) -> f64,
) {
    println!("\n== {title}: healthy vs outage wave ==");
    print!("{:>10}", "requests");
    for c in CONTROLLERS {
        print!("  {c:>7} {:>8}", "+faults");
    }
    println!();
    for (i, load) in healthy.load_points.iter().enumerate() {
        print!("{load:>10}");
        for c in CONTROLLERS {
            print!(
                "  {:>7.1} {:>8.1}",
                metric(&curve(healthy, c).points[i]),
                metric(&curve(faulted, c).points[i])
            );
        }
        println!();
    }
}

/// Mean of a per-point metric over the whole load axis.
fn mean_over_loads(
    report: &RunReport,
    controller: &str,
    metric: impl Fn(&PointReport) -> f64,
) -> f64 {
    let c = curve(report, controller);
    c.points.iter().map(&metric).sum::<f64>() / c.points.len() as f64
}

fn main() {
    let healthy = builtin("highway-handoff").expect("built-in");
    // Same base seed => same arrival sequences; the fault plan is the only
    // difference between the two sweeps.
    let faulted = builtin("outage-wave")
        .expect("built-in")
        .with_base_seed(healthy.base_seed);

    let healthy_report = run(&healthy);
    let faulted_report = run(&faulted);

    print_table(&healthy_report, &faulted_report, "acceptance %", |p| {
        p.acceptance.mean
    });
    print_table(&healthy_report, &faulted_report, "dropping %", |p| {
        100.0 * p.dropping.mean
    });

    println!("\n== Outage drops: calls cut mid-flight by dark cells ==");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>8}",
        "requests", "FACS-P", "FACS", "SCC"
    );
    for (i, load) in faulted_report.load_points.iter().enumerate() {
        print!("{load:>10}");
        for c in CONTROLLERS {
            print!(
                "  {:>8}",
                curve(&faulted_report, c).points[i]
                    .merged
                    .dropped_by_outage()
            );
        }
        println!();
    }

    // The robustness headline: how much acceptance does each controller
    // give up, and how much dropping does it take on, when a quarter of
    // the network fails mid-run?
    println!("\n== Capacity-loss cost (mean over the load axis) ==");
    println!(
        "{:>10}  {:>16}  {:>16}",
        "controller", "acceptance lost", "dropping gained"
    );
    for c in CONTROLLERS {
        let acc_cost = mean_over_loads(&healthy_report, c, |p| p.acceptance.mean)
            - mean_over_loads(&faulted_report, c, |p| p.acceptance.mean);
        let drop_cost = 100.0
            * (mean_over_loads(&faulted_report, c, |p| p.dropping.mean)
                - mean_over_loads(&healthy_report, c, |p| p.dropping.mean));
        println!("{c:>10}  {acc_cost:>15.1}%  {drop_cost:>15.1}%");
    }
}
