//! Quickstart: admit a handful of multimedia connections with FACS-P.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks through the layers of the library:
//! 1. ask FLC1 for the correction value of a single user,
//! 2. ask FLC2 for the soft accept/reject decision,
//! 3. screen a burst of arrivals in one `decide_batch` pass,
//! 4. run the full controller against the paper's 40-BU base station.
//!
//! Every FLC call below runs on the compiled, allocation-free execute
//! path (`MamdaniEngine::compile` → `CompiledEngine::infer_into`), which
//! is bit-identical to the string-keyed reference engine.

use facs_suite::prelude::*;

fn main() {
    // --- 1. FLC1: how promising is this user? -----------------------------
    let flc1 = Flc1::paper_default().expect("paper parameters are valid");
    let speed_kmh = 72.0; // a car on an urban road
    let angle_deg = 10.0; // heading almost straight at the base station
    let service_bu = 5.0; // a voice call (5 bandwidth units)
    let cv = flc1.correction_value(speed_kmh, angle_deg, service_bu);
    println!("FLC1 correction value for a {speed_kmh} km/h user at {angle_deg}°: {cv:.3}");

    // --- 2. FLC2: should we admit it given the cell state? ----------------
    let flc2 = Flc2::paper_default().expect("paper parameters are valid");
    for occupied in [0.0, 20.0, 30.0, 38.0] {
        let decision = flc2.decision_value(cv, service_bu, occupied);
        println!(
            "  occupied {occupied:>4.0} BU -> A/R = {decision:+.3} ({})",
            if decision > 0.0 { "admit" } else { "refuse" }
        );
    }

    // --- 3. Screen a burst of arrivals in one batch pass ------------------
    // `Simulator::screen` drives `AdmissionController::decide_batch`: every
    // request of a tick is judged against the same station snapshot,
    // without admitting anything — the "what would you do?" view.
    let mut controller = FacsPController::paper_default();
    let sim = Simulator::new(SimConfig::paper_default());
    let burst: Vec<AdmissionRequest> = (0..5)
        .map(|i| AdmissionRequest {
            id: 100 + i,
            cell: CellId::origin(),
            time: 0.0,
            class: ServiceClass::Voice,
            bandwidth: ServiceClass::Voice.paper_bandwidth(),
            holding_time: 180.0,
            speed_kmh: 20.0 * i as f64,
            angle_deg: 40.0 * i as f64 - 80.0,
            distance_m: None,
            is_handoff: false,
        })
        .collect();
    let mut decisions = Vec::new();
    sim.screen(&mut controller, &burst, &mut decisions);
    println!(
        "\nScreening a burst of {} voice arrivals in one pass:",
        burst.len()
    );
    for (req, d) in burst.iter().zip(&decisions) {
        println!(
            "  user {} ({:>3.0} km/h, {:>4.0}°) -> {} (A/R {:+.3})",
            req.id,
            req.speed_kmh,
            req.angle_deg,
            if d.accept { "admit" } else { "refuse" },
            d.score
        );
    }

    // --- 4. Full controller against the paper's base station --------------
    let mut controller = FacsPController::paper_default();
    let mut sim = Simulator::new(SimConfig::paper_default());
    let report = sim.run_batch(&mut controller, 40);
    println!(
        "\nFACS-P admitted {} of {} requesting connections ({:.1}%)",
        report.accepted, report.offered, report.acceptance_percentage
    );
    println!(
        "blocking probability {:.3}, station utilisation {} / {} BU",
        report.blocking_probability,
        sim.station(&CellId::origin()).unwrap().occupied(),
        sim.station(&CellId::origin()).unwrap().capacity()
    );

    // Per-class breakdown, as the paper's 70/20/10 mix would suggest.
    for class in ServiceClass::ALL {
        let m = report.metrics.class(class);
        println!(
            "  {class:<5} offered {:>3}, accepted {:>3} ({:.0}%)",
            m.offered,
            m.accepted,
            100.0 * m.acceptance_ratio()
        );
    }
}
