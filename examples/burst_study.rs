//! Burstiness study: does the paper's FACS-vs-SCC crossover survive
//! non-Poisson arrivals?
//!
//! ```text
//! cargo run --release --example burst_study
//! ```
//!
//! The paper evaluates FACS / FACS-P against the Shadow Cluster Concept
//! under memoryless Poisson arrivals only.  This example re-runs the same
//! single-cell evaluation under three arrival processes — the Poisson
//! original (`paper-default`), rate-preserving MMPP flash bursts
//! (`burst-mmpp`) and a looped recorded trace (`burst-trace`) — and prints
//! the acceptance and dropping curves side by side, plus the load at which
//! each controller's acceptance falls below SCC's.
//!
//! The MMPP scenario offers *exactly* the same long-run load per point as
//! the Poisson one (its time-average rate multiplier is 1), so any change
//! in the table is attributable to burstiness alone.  The numbers in
//! `PAPER.md` ("Beyond the paper: burstiness") and the README are printed
//! by this binary; re-run it to reproduce them.

use facs_suite::prelude::*;

/// Run one built-in scenario and return its report.
fn run(name: &str) -> RunReport {
    let spec = builtin(name).expect("scenario is a built-in");
    eprintln!(
        "running {name}: {} controllers x {} loads x {} reps ...",
        spec.controllers.len(),
        spec.load_points.len(),
        spec.replications
    );
    SweepRunner::new().run(&spec).expect("built-ins are valid")
}

fn curve<'a>(report: &'a RunReport, label: &str) -> &'a CurveReport {
    report
        .curves
        .iter()
        .find(|c| c.controller == label)
        .expect("controller is part of the scenario")
}

/// Print one scenario's acceptance table for the shared FACS-P / FACS /
/// SCC trio.  (Dropping stays 0 in every single-cell scenario — there are
/// no handoffs to fail — so the table shows acceptance only.)
fn print_table(report: &RunReport, load_unit: &str) {
    println!("\n== {} — {}", report.scenario, report.description);
    println!(
        "{:>10}  {:>12}  {:>12}  {:>12}",
        load_unit, "FACS-P acc%", "FACS acc%", "SCC acc%"
    );
    let facs_p = curve(report, "FACS-P");
    let facs = curve(report, "FACS");
    let scc = curve(report, "SCC");
    for (i, load) in report.load_points.iter().enumerate() {
        print!("{load:>10}");
        for c in [facs_p, facs, scc] {
            print!("  {:>12.1}", c.points[i].acceptance.mean);
        }
        println!();
    }
}

/// Mean acceptance over the whole load axis — one robustness number per
/// controller per arrival process.
fn mean_acceptance(report: &RunReport, controller: &str) -> f64 {
    let c = curve(report, controller);
    c.points.iter().map(|p| p.acceptance.mean).sum::<f64>() / c.points.len() as f64
}

/// First load point at which `controller`'s mean acceptance drops below
/// SCC's — the crossover after which the admission-rationing fuzzy
/// controllers accept fewer new calls than the shadow-cluster baseline.
fn crossover(report: &RunReport, controller: &str) -> Option<usize> {
    let c = curve(report, controller);
    let scc = curve(report, "SCC");
    report
        .load_points
        .iter()
        .enumerate()
        .find(|&(i, _)| c.points[i].acceptance.mean < scc.points[i].acceptance.mean)
        .map(|(_, &load)| load)
}

fn main() {
    let poisson = run("paper-default");
    let mmpp = run("burst-mmpp");
    let trace = run("burst-trace");

    print_table(&poisson, "requests");
    print_table(&mmpp, "requests");
    print_table(&trace, "requests");

    println!("\n== Crossover: first load where acceptance falls below SCC ==");
    println!("{:>14}  {:>10}  {:>10}", "arrivals", "FACS-P", "FACS");
    for (label, report) in [("poisson", &poisson), ("mmpp", &mmpp)] {
        let fmt = |c: Option<usize>| c.map_or("never".to_string(), |l| l.to_string());
        println!(
            "{:>14}  {:>10}  {:>10}",
            label,
            fmt(crossover(report, "FACS-P")),
            fmt(crossover(report, "FACS"))
        );
    }

    // Robustness: how many points of mean acceptance does each controller
    // lose when the same long-run load arrives in bursts?  MMPP offers
    // exactly the Poisson load per point, so this difference is pure
    // burstiness cost.
    println!("\n== Burstiness cost: mean acceptance over the load axis ==");
    println!(
        "{:>14}  {:>10}  {:>10}  {:>10}",
        "arrivals", "FACS-P", "FACS", "SCC"
    );
    for (label, report) in [("poisson", &poisson), ("mmpp", &mmpp), ("trace", &trace)] {
        println!(
            "{:>14}  {:>9.1}%  {:>9.1}%  {:>9.1}%",
            label,
            mean_acceptance(report, "FACS-P"),
            mean_acceptance(report, "FACS"),
            mean_acceptance(report, "SCC")
        );
    }
    let cost = |ctrl: &str| mean_acceptance(&poisson, ctrl) - mean_acceptance(&mmpp, ctrl);
    println!(
        "\nmmpp cost vs poisson (points of mean acceptance): \
         FACS-P {:.1}, FACS {:.1}, SCC {:.1}",
        cost("FACS-P"),
        cost("FACS"),
        cost("SCC")
    );
}
