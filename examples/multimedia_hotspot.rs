//! Multimedia hotspot scenario: a single congested cell with a shifting
//! traffic mix.
//!
//! ```text
//! cargo run --release --example multimedia_hotspot
//! ```
//!
//! The paper's evaluation fixes the traffic mix at 70 % text / 20 % voice /
//! 10 % video.  This example sweeps the share of video traffic in a single
//! 40-BU cell (think of a stadium hotspot where everyone starts streaming)
//! and shows how FACS-P's acceptance and per-class fairness respond, and
//! how the priority of requesting connections (the paper's future-work
//! extension) changes the picture for an "emergency" slice of traffic.

use facs_suite::prelude::*;

fn sweep_mix(video_share: f64) -> SimReport {
    let text = (1.0 - video_share) * 0.78;
    let voice = (1.0 - video_share) * 0.22;
    let mix = TrafficMix::new(text, voice, video_share);
    let traffic = TrafficConfig {
        mix,
        mean_interarrival_s: 6.0,
        mean_holding_s: 180.0,
        ..TrafficConfig::paper_default()
    };
    let config = SimConfig::paper_default()
        .with_seed(0xBEEF)
        .with_traffic(traffic);
    let mut controller = FacsPController::paper_default();
    let mut sim = Simulator::new(config);
    sim.run_poisson(&mut controller, 600)
}

fn main() {
    println!("Multimedia hotspot: one 40-BU cell, 600 requests, growing video share\n");
    println!(
        "{:>12}  {:>10}  {:>8}  {:>8}  {:>8}",
        "video share", "accepted", "text %", "voice %", "video %"
    );
    for video_share in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let report = sweep_mix(video_share);
        println!(
            "{:>11.0}%  {:>9.1}%  {:>7.1}%  {:>7.1}%  {:>7.1}%",
            100.0 * video_share,
            report.acceptance_percentage,
            100.0 * report.metrics.class(ServiceClass::Text).acceptance_ratio(),
            100.0 * report.metrics.class(ServiceClass::Voice).acceptance_ratio(),
            100.0 * report.metrics.class(ServiceClass::Video).acceptance_ratio(),
        );
    }

    // Future-work extension: a high-priority slice of requesting
    // connections (e.g. emergency calls) sees a discounted counter state.
    println!("\nRequest-priority extension (video-heavy load, 30% video):");
    for (label, priority) in [
        ("low priority", RequestPriority::Low),
        ("normal", RequestPriority::Normal),
        ("high priority", RequestPriority::High),
    ] {
        let traffic = TrafficConfig {
            mix: TrafficMix::new(0.5, 0.2, 0.3),
            mean_interarrival_s: 6.0,
            mean_holding_s: 180.0,
            ..TrafficConfig::paper_default()
        };
        let config = SimConfig::paper_default()
            .with_seed(0xBEEF)
            .with_traffic(traffic);
        let mut controller =
            FacsPController::new(FacsPConfig::paper_default().with_request_priority(priority))
                .expect("paper parameters are valid");
        let mut sim = Simulator::new(config);
        let report = sim.run_poisson(&mut controller, 600);
        println!(
            "  {label:<14} accepted {:>5.1}%",
            report.acceptance_percentage
        );
    }
}
