//! Multimedia hotspot scenario: a single congested cell with a shifting
//! traffic mix.
//!
//! ```text
//! cargo run --release --example multimedia_hotspot
//! ```
//!
//! The paper's evaluation fixes the traffic mix at 70 % text / 20 % voice /
//! 10 % video.  This example sweeps the share of video traffic in a single
//! 40-BU cell (think of a stadium hotspot where everyone starts streaming):
//! each share is its own [`ScenarioSpec`] run through the sweep engine, so
//! the per-class fairness numbers come with replication-averaged counters.
//! The second half shows the priority of requesting connections (the
//! paper's future-work extension) via the lower-level controller API.

use facs_suite::prelude::*;

/// The hotspot spec for one video share.
fn hotspot_spec(video_share: f64) -> ScenarioSpec {
    let text = (1.0 - video_share) * 0.78;
    let voice = (1.0 - video_share) * 0.22;
    ScenarioSpec {
        name: format!("hotspot-video-{:.0}", 100.0 * video_share),
        description: "Single congested 40-BU cell with a shifting mix".to_string(),
        grid_radius_cells: 0,
        cell_radius_m: 1000.0,
        station_capacity: 40,
        traffic: TrafficConfig {
            mix: TrafficMix::new(text, voice, video_share),
            mean_interarrival_s: 6.0,
            mean_holding_s: 180.0,
            ..TrafficConfig::paper_default()
        },
        traffic_model: TrafficModel::Poisson,
        fault_plan: FaultPlan::new(),
        mobility: MobilityModel::paper_default(),
        utilization_sample_interval_s: 0.0,
        controllers: vec![ControllerSpec::FacsP],
        load_mode: LoadMode::TotalRequests,
        load_points: vec![600],
        replications: 3,
        base_seed: 0xBEEF,
    }
}

fn main() {
    println!("Multimedia hotspot: one 40-BU cell, 600 requests, growing video share\n");
    println!(
        "{:>12}  {:>10}  {:>8}  {:>8}  {:>8}",
        "video share", "accepted", "text %", "voice %", "video %"
    );
    let runner = SweepRunner::new();
    for video_share in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let report = runner
            .run(&hotspot_spec(video_share))
            .expect("hotspot specs are valid");
        let point = &report.curves[0].points[0];
        let ratio = |class: ServiceClass| 100.0 * point.merged.class(class).acceptance_ratio();
        println!(
            "{:>11.0}%  {:>9.1}%  {:>7.1}%  {:>7.1}%  {:>7.1}%",
            100.0 * video_share,
            point.acceptance.mean,
            ratio(ServiceClass::Text),
            ratio(ServiceClass::Voice),
            ratio(ServiceClass::Video),
        );
    }

    // Future-work extension: a high-priority slice of requesting
    // connections (e.g. emergency calls) sees a discounted counter state.
    println!("\nRequest-priority extension (video-heavy load, 30% video):");
    for (label, priority) in [
        ("low priority", RequestPriority::Low),
        ("normal", RequestPriority::Normal),
        ("high priority", RequestPriority::High),
    ] {
        let traffic = TrafficConfig {
            mix: TrafficMix::new(0.5, 0.2, 0.3),
            mean_interarrival_s: 6.0,
            mean_holding_s: 180.0,
            ..TrafficConfig::paper_default()
        };
        let config = SimConfig::paper_default()
            .with_seed(0xBEEF)
            .with_traffic(traffic);
        let mut controller =
            FacsPController::new(FacsPConfig::paper_default().with_request_priority(priority))
                .expect("paper parameters are valid");
        let mut sim = Simulator::new(config);
        let report = sim.run_poisson(&mut controller, 600);
        println!(
            "  {label:<14} accepted {:>5.1}%",
            report.acceptance_percentage
        );
    }
}
