//! Side-by-side comparison of every admission policy on the paper's
//! workload — a miniature version of Figs. 7 and 10 that runs in a couple
//! of seconds.
//!
//! ```text
//! cargo run --release --example compare_controllers
//! ```

use facs_suite::prelude::*;

/// Offer the *same* pre-generated arrival sequence to a controller and
/// report its acceptance percentage.
fn acceptance_on(requests: &[CallRequest], controller: &mut dyn AdmissionController) -> f64 {
    let mut sim = Simulator::new(SimConfig::paper_default().with_seed(1));
    sim.offer_requests(controller, requests);
    sim.metrics().acceptance_percentage()
}

fn main() {
    println!("Identical arrival sequences offered to every controller (40-BU cell)\n");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>10}  {:>14}",
        "requests", "FACS-P", "FACS", "SCC", "always-accept"
    );

    for n in [10usize, 25, 50, 75, 100] {
        // One shared arrival sequence per load level so the comparison is
        // paired, exactly like the paper's Fig. 7 / Fig. 10 methodology.
        let traffic = TrafficConfig {
            mean_interarrival_s: 450.0 / n as f64,
            handoff_fraction: 0.3,
            direction_predictability: 1.0,
            ..TrafficConfig::paper_default()
        };
        let mut generator = TrafficGenerator::new(traffic, 42 + n as u64);
        let requests = generator.generate_poisson(n);

        let facs_p = acceptance_on(&requests, &mut FacsPController::paper_default());
        let facs = acceptance_on(&requests, &mut FacsController::paper_default());
        let scc = acceptance_on(
            &requests,
            &mut SccAdmission::new(SccConfig::paper_default()),
        );
        let always = acceptance_on(&requests, &mut AlwaysAccept);

        println!("{n:>10}  {facs_p:>9.1}%  {facs:>9.1}%  {scc:>9.1}%  {always:>13.1}%");
    }

    println!(
        "\nFACS-P trades new-call acceptance under load for protection of on-going \
         connections; run `cargo run -p facs-bench --bin all_figures` for the full \
         reproduction of the paper's figures."
    );
}
