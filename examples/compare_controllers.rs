//! Side-by-side comparison of every admission policy on the paper's
//! workload — a miniature version of Figs. 7 and 10 that runs in a couple
//! of seconds.
//!
//! ```text
//! cargo run --release --example compare_controllers
//! ```
//!
//! The workload is a single declarative [`ScenarioSpec`]; every
//! `(controller, load, replication)` cell draws its own SplitMix64-hashed
//! seed stream, so each policy's numbers come from genuinely independent
//! replications over the same load axis.  The FACS-P-LUT column runs the
//! same policy from pre-tabulated decision surfaces (within the measured
//! LUT error of the exact FACS-P decisions).

use facs_suite::prelude::*;

fn main() {
    let spec = ScenarioSpec {
        name: "compare-controllers".to_string(),
        description: "Every policy over the same load axis in one 40-BU cell".to_string(),
        grid_radius_cells: 0,
        cell_radius_m: 1000.0,
        station_capacity: 40,
        traffic: TrafficConfig {
            handoff_fraction: 0.3,
            direction_predictability: 1.0,
            ..TrafficConfig::paper_default()
        },
        traffic_model: TrafficModel::Poisson,
        fault_plan: FaultPlan::new(),
        mobility: MobilityModel::paper_default(),
        utilization_sample_interval_s: 0.0,
        controllers: vec![
            ControllerSpec::FacsP,
            ControllerSpec::FacsPLut,
            ControllerSpec::Facs,
            ControllerSpec::Scc,
            ControllerSpec::AlwaysAccept,
        ],
        load_mode: LoadMode::RequestsPerWindow { window_s: 450.0 },
        load_points: vec![10, 25, 50, 75, 100],
        replications: 3,
        base_seed: 42,
    };

    let report = SweepRunner::new().run(&spec).expect("spec is valid");

    println!("Every admission policy over the same load axis (40-BU cell)\n");
    print!("{:>10}", "requests");
    for curve in &report.curves {
        print!("  {:>13}", curve.controller);
    }
    println!();
    for (i, load) in report.load_points.iter().enumerate() {
        print!("{load:>10}");
        for curve in &report.curves {
            print!("  {:>12.1}%", curve.points[i].acceptance.mean);
        }
        println!();
    }

    println!(
        "\nFACS-P trades new-call acceptance under load for protection of on-going \
         connections; run `cargo run -p facs-bench --bin all_figures` for the full \
         reproduction of the paper's figures, or `cargo run -p facs-sweep --bin sweep \
         -- --list` for more scenarios."
    );
}
