//! Offline API-compatible stand-in for `serde_json`.
//!
//! Renders the [`serde::Value`] tree produced by the sibling `serde`
//! stand-in to JSON text and parses it back, covering `to_string`,
//! `to_string_pretty` and `from_str` with lossless round-trips.

use std::fmt::Write as _;

pub use serde::Error;
pub use serde::Value;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0)?;
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent a non-finite number"));
            }
            // `{:?}` is Rust's shortest round-trip float formatting and is
            // always valid JSON for finite values.
            let _ = write!(out, "{f:?}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            write_newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            write_newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek()? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'"' => self.parse_string().map(Value::String),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.peek()? != b'"' && self.bytes[self.pos] != b'\\' {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            if self.bytes[self.pos] == b'"' {
                self.pos += 1;
                return Ok(out);
            }
            // Escape sequence.
            self.pos += 1;
            let escape = self.peek()?;
            self.pos += 1;
            match escape {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let hex = self
                        .bytes
                        .get(self.pos..self.pos + 4)
                        .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                    let hex =
                        std::str::from_utf8(hex).map_err(|_| Error::custom("bad \\u escape"))?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| Error::custom("bad \\u escape"))?;
                    self.pos += 4;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                    );
                }
                other => {
                    return Err(Error::custom(format!(
                        "unknown escape `\\{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let value = Value::Object(vec![
            ("name".into(), Value::String("fig7 \"quoted\"".into())),
            (
                "points".into(),
                Value::Array(vec![
                    Value::Array(vec![Value::Int(10), Value::Float(95.5)]),
                    Value::Array(vec![Value::Int(-3), Value::Float(0.1)]),
                ]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("missing".into(), Value::Null),
        ]);
        let compact = to_string(&value).unwrap();
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), value);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), value);
    }

    #[test]
    fn indexing_and_comparisons() {
        let v: Value = from_str(r#"{"series":[{"label":"FACS"}],"n":2}"#).unwrap();
        assert_eq!(v["series"][0]["label"], "FACS");
        assert_eq!(v["n"].as_i64(), Some(2));
        assert!(v["absent"].as_str().is_none());
    }
}
