//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! built directly on `proc_macro` (the build environment has no `syn` or
//! `quote`). The generated impls only need field and variant *names* —
//! field types are resolved by trait dispatch and struct-literal
//! inference — so the parser is a small scanner over the token stream.
//!
//! Supported shapes: structs with named fields, tuple structs, unit
//! structs, and enums with unit / named-field / tuple variants. Generic
//! parameters are carried through; type parameters get a `Serialize` /
//! `Deserialize` bound appended.
//!
//! Two field attributes are understood on named fields, matching
//! upstream semantics: `#[serde(skip)]` omits the field from the
//! serialised form and restores it with `Default::default()` on
//! deserialisation, and `#[serde(default)]` serialises the field
//! normally but falls back to `Default::default()` when the key is
//! absent from the input (backward-compatible format evolution).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named struct/variant field, plus which `#[serde(...)]` marks it
/// carries.
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

enum Body {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    /// Raw text between `<` and `>` of the type's generics, or empty.
    generics: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    render_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    render_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(i) if i.to_string() == "struct" || i.to_string() == "enum" => {
            i.to_string()
        }
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    pos += 1;

    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    pos += 1;

    let generics = parse_generics(&tokens, &mut pos);

    // Skip an optional `where` clause: everything up to the body group (or
    // the trailing `;` of a unit/tuple struct).
    let body = if kind == "enum" {
        let group = next_brace_group(&tokens, &mut pos);
        Body::Enum(parse_variants(group))
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            Some(TokenTree::Ident(i)) if i.to_string() == "where" => {
                let group = next_brace_group(&tokens, &mut pos);
                Body::Struct(Fields::Named(parse_named_fields(group)))
            }
            other => panic!("unsupported struct body: {other:?}"),
        }
    };

    Input {
        name,
        generics,
        body,
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // `pub(crate)` and friends
                    }
                }
            }
            _ => return,
        }
    }
}

/// The `#[serde(...)]` marks found on one field's attributes.
#[derive(Default, Clone, Copy)]
struct FieldMarks {
    skip: bool,
    default: bool,
}

/// Like [`skip_attrs_and_vis`], but reports which `#[serde(...)]` marks
/// (`skip`, `default`) the skipped attributes carried.
fn skip_attrs_and_vis_detecting_marks(tokens: &[TokenTree], pos: &mut usize) -> FieldMarks {
    let mut marks = FieldMarks::default();
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                    let found = serde_attr_marks(g.stream());
                    marks.skip |= found.skip;
                    marks.default |= found.default;
                }
                *pos += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // `pub(crate)` and friends
                    }
                }
            }
            _ => return marks,
        }
    }
}

/// Marks carried by the token stream inside the brackets of a
/// `#[serde(...)]` attribute; all-false for any other attribute.
fn serde_attr_marks(stream: TokenStream) -> FieldMarks {
    let mut marks = FieldMarks::default();
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return marks,
    }
    if let Some(TokenTree::Group(g)) = tokens.get(1) {
        if g.delimiter() == Delimiter::Parenthesis {
            for t in g.stream() {
                if let TokenTree::Ident(i) = &t {
                    match i.to_string().as_str() {
                        "skip" => marks.skip = true,
                        "default" => marks.default = true,
                        _ => {}
                    }
                }
            }
        }
    }
    marks
}

fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return String::new(),
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut out = String::new();
    while depth > 0 {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                out.push('<');
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    out.push('>');
                }
            }
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Keep lifetimes glued to their identifier: `' a` would not
                // re-parse as a lifetime token.
                out.push('\'');
            }
            other => {
                out.push_str(&other.to_string());
                out.push(' ');
            }
        }
        *pos += 1;
    }
    out.trim().to_string()
}

fn next_brace_group(tokens: &[TokenTree], pos: &mut usize) -> TokenStream {
    while *pos < tokens.len() {
        if let TokenTree::Group(g) = &tokens[*pos] {
            if g.delimiter() == Delimiter::Brace {
                *pos += 1;
                return g.stream();
            }
        }
        *pos += 1;
    }
    panic!("expected a brace-delimited body");
}

/// Field names of a `{ ... }` struct body, skipping attributes, visibility
/// and types (commas inside `<...>` are not field separators).  A
/// `#[serde(skip)]` / `#[serde(default)]` attribute marks the following
/// field accordingly.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let marks = skip_attrs_and_vis_detecting_marks(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        match &tokens[pos] {
            TokenTree::Ident(i) => fields.push(Field {
                name: i.to_string(),
                skip: marks.skip,
                default: marks.default,
            }),
            other => panic!("expected field name, found {other}"),
        }
        pos += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0usize;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Arity of a tuple-struct / tuple-variant `( ... )` body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0usize;
    let mut count = 1;
    let mut trailing_comma = false;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Generics plumbing
// ---------------------------------------------------------------------------

/// Split `generics` (the text between `<` and `>`) into top-level params.
fn split_params(generics: &str) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in generics.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                params.push(current.trim().to_string());
                current.clear();
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        params.push(current.trim().to_string());
    }
    params
}

/// `(impl_generics, ty_generics)` for the generated impl block, e.g.
/// `("<'a, T: ::serde::Serialize>", "<'a, T>")`.
fn render_generics(generics: &str, bound: &str) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), String::new());
    }
    let mut impl_params = Vec::new();
    let mut ty_params = Vec::new();
    for param in split_params(generics) {
        let without_default = param.split('=').next().unwrap_or("").trim().to_string();
        let name = without_default
            .split(':')
            .next()
            .unwrap_or("")
            .trim()
            .trim_start_matches("const ")
            .trim()
            .to_string();
        if param.starts_with('\'') || param.starts_with("const") {
            impl_params.push(without_default);
            ty_params.push(name);
        } else {
            if without_default.contains(':') {
                impl_params.push(format!("{without_default} + {bound}"));
            } else {
                impl_params.push(format!("{without_default}: {bound}"));
            }
            ty_params.push(name);
        }
    }
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", ty_params.join(", ")),
    )
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn ser_named_fields(fields: &[Field], accessor: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            let f = &f.name;
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::serialize_value({accessor}{f}))"
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

fn de_named_fields(fields: &[Field], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let (skip, default) = (f.skip, f.default);
            let f = &f.name;
            if skip {
                format!("{f}: ::std::default::Default::default()")
            } else if default {
                format!(
                    "{f}: match {source}.get(\"{f}\") {{\
                     ::std::option::Option::Some(v) => \
                     ::serde::Deserialize::deserialize_value(v)?,\
                     ::std::option::Option::None => ::std::default::Default::default(),\
                     }}"
                )
            } else {
                format!(
                    "{f}: ::serde::Deserialize::deserialize_value({source}.get(\"{f}\")\
                     .ok_or_else(|| ::serde::Error::custom(\"missing field `{f}`\"))?)?"
                )
            }
        })
        .collect();
    inits.join(", ")
}

fn render_serialize(input: &Input) -> String {
    let (impl_generics, ty_generics) = render_generics(&input.generics, "::serde::Serialize");
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Named(fields)) => ser_named_fields(fields, "&self."),
        Body::Struct(Fields::Tuple(arity)) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Unit) => {
            format!("::serde::Value::String(::std::string::String::from(\"{name}\"))")
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, fields)| match fields {
                    Fields::Unit => format!(
                        "Self::{variant} => \
                         ::serde::Value::String(::std::string::String::from(\"{variant}\")),"
                    ),
                    Fields::Named(fields) => {
                        // Bind only serialised fields; `..` absorbs any
                        // `#[serde(skip)]` ones.
                        let bindings: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.clone())
                            .collect();
                        let pattern = if bindings.is_empty() {
                            "..".to_string()
                        } else {
                            format!("{}, ..", bindings.join(", "))
                        };
                        let inner = ser_named_fields(fields, "");
                        format!(
                            "Self::{variant} {{ {pattern} }} => ::serde::Value::Object(\
                             ::std::vec![(::std::string::String::from(\"{variant}\"), {inner})]),"
                        )
                    }
                    Fields::Tuple(arity) => {
                        let bindings: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = bindings
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        format!(
                            "Self::{variant}({}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{variant}\"), \
                             ::serde::Value::Array(::std::vec![{}]))]),",
                            bindings.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl {impl_generics} ::serde::Serialize for {name} {ty_generics} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn render_deserialize(input: &Input) -> String {
    let (impl_generics, ty_generics) = render_generics(&input.generics, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Named(fields)) => {
            let inits = de_named_fields(fields, "value");
            format!("::std::result::Result::Ok(Self {{ {inits} }})")
        }
        Body::Struct(Fields::Tuple(arity)) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array()\
                 .ok_or_else(|| ::serde::Error::custom(\"expected array for `{name}`\"))?;\n\
                 if items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                     \"wrong tuple arity for `{name}`\"));\n\
                 }}\n\
                 ::std::result::Result::Ok(Self({}))",
                items.join(", ")
            )
        }
        Body::Struct(Fields::Unit) => "::std::result::Result::Ok(Self)".to_string(),
        Body::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for (variant, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push(format!(
                        "\"{variant}\" => ::std::result::Result::Ok(Self::{variant}),"
                    )),
                    Fields::Named(fields) => {
                        let inits = de_named_fields(fields, "inner");
                        data_arms.push(format!(
                            "\"{variant}\" => \
                             ::std::result::Result::Ok(Self::{variant} {{ {inits} }}),"
                        ));
                    }
                    Fields::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                            })
                            .collect();
                        data_arms.push(format!(
                            "\"{variant}\" => {{\n\
                             let items = inner.as_array()\
                             .ok_or_else(|| ::serde::Error::custom(\
                             \"expected array for variant `{variant}`\"))?;\n\
                             if items.len() != {arity} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"wrong arity for variant `{variant}`\"));\n\
                             }}\n\
                             ::std::result::Result::Ok(Self::{variant}({}))\n\
                             }}",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                     {}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                     let (tag, inner) = &fields[0];\n\
                     let _ = inner;\n\
                     match tag.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                     }}\n\
                 }}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unexpected value for `{name}`: {{other:?}}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl {impl_generics} ::serde::Deserialize for {name} {ty_generics} {{\n\
             fn deserialize_value(value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
