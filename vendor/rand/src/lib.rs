//! Offline API-compatible stand-in for `rand` 0.8.
//!
//! [`rngs::StdRng`] is a deterministic xoshiro256++ generator (seeded via
//! SplitMix64, like `rand`'s `seed_from_u64`). It does not reproduce the
//! upstream ChaCha12 byte stream — only the API and the determinism
//! guarantees the workspace relies on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for ::std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for ::std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u32, u64, usize, i32, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` (e.g. `rng.gen::<f64>()` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

/// Distribution types, mirroring `rand::distributions`.
pub mod distributions {
    use super::{RngCore, Standard};

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draw one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform {
        low: f64,
        high: f64,
    }

    impl Uniform {
        /// Uniform distribution over `[low, high)`; panics if `low >= high`
        /// (matching `rand` 0.8).
        #[must_use]
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "Uniform::new called with low >= high");
            Self { low, high }
        }
    }

    impl Distribution<f64> for Uniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + f64::sample_standard(rng) * (self.high - self.low)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let v = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&v));
            let u = Uniform::new(-2.0, 2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&u));
        }
    }
}
