//! Offline API-compatible stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! JSON-like [`Value`] tree: `Serialize` renders a type into a `Value`,
//! `Deserialize` rebuilds the type from one. `serde_json` (the sibling
//! stand-in) renders that tree to text and parses it back. This covers the
//! workspace's needs (derive on plain structs/enums, JSON round-trips)
//! with a fraction of the machinery.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the data model every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (serialized without a decimal point).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None` for any other variant.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None` for any other variant.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, or `None` for any other variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents as `f64` (integers are widened), else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric contents as `u64` if losslessly representable, else `None`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Numeric contents as `i64`, else `None`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean contents, or `None` for any other variant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Error produced when deserialization finds an unexpected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error with an arbitrary message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialize `self` into the [`Value`] data model.
pub trait Serialize {
    /// Render this value as a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse this type out of a [`Value`] tree.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {got:?}"))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| unexpected("bool", value))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::Float(*self as f64),
                }
            }
        }

        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| unexpected("integer", value))?;
                <$t>::try_from(i).map_err(Error::custom)
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| unexpected("number", value))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| unexpected("string", value))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| unexpected("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(unexpected("single-character string", value)),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference / container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| unexpected("array", value))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| unexpected("tuple", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected} elements, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

fn serialize_map<'a, K, V>(entries: impl Iterator<Item = (&'a K, &'a V)>) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
{
    // Maps serialize as arrays of [key, value] pairs so non-string keys
    // round-trip losslessly through the same data model.
    Value::Array(
        entries
            .map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()]))
            .collect(),
    )
}

fn deserialize_map_entries<K: Deserialize, V: Deserialize>(
    value: &Value,
) -> Result<Vec<(K, V)>, Error> {
    value
        .as_array()
        .ok_or_else(|| unexpected("map (array of pairs)", value))?
        .iter()
        .map(|pair| <(K, V)>::deserialize_value(pair))
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_map_entries(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_map_entries(value)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
