//! Offline API-compatible stand-in for `criterion` 0.5.
//!
//! Implements the surface this workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`], benchmark
//! groups, [`BenchmarkId`], [`Bencher::iter`] and [`black_box`] — with a
//! simple wall-clock measurement loop instead of the upstream statistical
//! machinery.  Each benchmark runs a short warm-up, then `sample_size`
//! timed batches, and reports the per-iteration mean and min/max to
//! stdout in a `name  time: [.. .. ..]` line, so `cargo bench` output
//! stays human-readable and grep-able.  No reports are written to disk.

use std::fmt::Display;
use std::time::Instant;

/// Opaque value barrier: prevents the optimiser from deleting or
/// constant-folding the benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measurement settings and the registry entry point handed to every
/// benchmark target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Set how many timed batches each benchmark records.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut routine);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark under `group-name/id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&name, self.sample_size, &mut routine);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut routine: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&name, self.sample_size, &mut |b: &mut Bencher| {
            routine(b, input)
        });
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op for the
    /// stand-in, kept so call sites read identically).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new<D: Display>(function: &str, parameter: D) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion of the various accepted id types into [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Perform the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// Iterations per timed batch (tuned during warm-up).
    iters_per_batch: u64,
    /// Recorded per-batch durations in nanoseconds.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: warm up, pick a batch size targeting a few
    /// milliseconds per batch, then record `sample_size` timed batches.
    pub fn iter<T, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> T,
    {
        // Warm-up and batch sizing: grow the batch until it takes ≥ 1 ms
        // or a cap is hit, so per-iteration timer overhead is negligible
        // for fast routines while slow routines still finish quickly.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed.as_micros() >= 1000 || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_batch = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, routine: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters_per_batch: 1,
        samples: Vec::new(),
        sample_size,
    };
    routine(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<60} (no measurement — bencher.iter never called)");
        return;
    }
    let min = bencher
        .samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let max = bencher
        .samples
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let mean = bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64;
    println!(
        "{name:<60} time: [{} {} {}] ({} samples × {} iters)",
        format_ns(min),
        format_ns(mean),
        format_ns(max),
        bencher.samples.len(),
        bencher.iters_per_batch,
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function, mirroring upstream's two macro
/// forms (positional targets, or `name/config/targets` key-value style).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = "Benchmark group entry point (criterion stand-in)."]
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running every listed group.
/// `cargo bench` passes harness flags (`--bench`, filters) on the command
/// line; the stand-in accepts and ignores them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Swallow harness arguments such as `--bench`.
            let _ = std::env::args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2u64 + 2)
            })
        });
        assert!(runs >= 3);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| black_box(1)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
