//! Offline API-compatible stand-in for `proptest`.
//!
//! The `proptest!` macro really samples inputs and runs the configured
//! number of cases from a deterministic per-test RNG — what it lacks
//! compared to upstream is shrinking and persistence of failing cases.

/// Deterministic sampling machinery used by the [`proptest!`] macro.
pub mod test_runner {
    /// Marker returned by `prop_assume!` when a sampled case is rejected.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// SplitMix64 generator; every test gets a stream seeded from its name
    /// so failures reproduce across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: hash }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Strategies: descriptions of how to sample a value.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for sampling values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform sampled values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Weighted union over same-valued strategies, built by
    /// [`prop_oneof!`](crate::prop_oneof).  Arms are type-erased so the
    /// macro can mix strategy types (`Just`, ranges, maps…) freely.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>,
    }

    impl<V> Union<V> {
        /// Build a union from `(weight, sampler)` arms; weights must not
        /// all be zero.
        #[must_use]
        pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>) -> Self {
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs at least one arm with non-zero weight"
            );
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (weight, sampler) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return sampler(rng);
                }
                pick -= weight;
            }
            unreachable!("weights sum to `total`");
        }
    }
}

/// `any::<T>()` strategies, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the type's full domain.
        fn sample_any(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// Full-domain strategy for `T`, mirroring `proptest::prelude::any`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_any(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn sample_any(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn sample_any(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn sample_any(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    impl Arbitrary for f32 {
        fn sample_any(rng: &mut TestRng) -> f32 {
            rng.next_f64() as f32
        }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy sampling `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Samples either boolean uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` strategy: each element from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s with sizes drawn from a range.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `HashSet` strategy: each element from `element`, target size from
    /// `size` (best effort when the element domain is small).
    pub fn hash_set<S>(element: S, size: std::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.clone().sample(rng);
            let mut set = HashSet::with_capacity(target);
            for _ in 0..target.saturating_mul(10).max(10) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test must run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` accepted cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Define property tests: each `fn` samples its arguments from the given
/// strategies and runs the body for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = <$crate::prelude::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::prelude::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(::std::stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                    #[allow(unused_mut)]
                    let mut case = move || -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    if case().is_ok() {
                        accepted += 1;
                    }
                }
                ::std::assert!(
                    accepted > 0,
                    "prop_assume! rejected every sampled case in `{}`",
                    ::std::stringify!($name)
                );
            }
        )*
    };
}

/// Pick between strategies, optionally weighted (`weight => strategy`).
/// All arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((
                $weight as u32,
                {
                    let strategy = $strategy;
                    ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::sample(&strategy, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
                }
            ),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Assert a condition inside a property test (panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        ::std::assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        ::std::assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        ::std::assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        ::std::assert_eq!($left, $right, $($fmt)*);
    };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        ::std::assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        ::std::assert_ne!($left, $right, $($fmt)*);
    };
}

/// Skip the current sampled case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}
