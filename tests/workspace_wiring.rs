//! Workspace-wiring smoke test: every crate is reachable through the
//! facade's `prelude`, the re-exported types compose, and a seeded run is
//! deterministic end to end. This is the test that fails first if the
//! Cargo workspace, the facade re-exports, or the cross-crate APIs drift
//! apart.

use facs_suite::prelude::*;

/// The `prelude` alone is enough to build every controller the paper
/// compares and drive them through the simulator.
#[test]
fn prelude_constructs_every_controller_and_runs_them() {
    let mut controllers: Vec<Box<dyn AdmissionController>> = vec![
        Box::new(FacsPController::paper_default()),
        Box::new(FacsController::paper_default()),
        Box::new(SccAdmission::new(SccConfig::paper_default())),
        Box::new(AlwaysAccept),
        Box::new(CapacityThreshold::default()),
    ];
    for controller in controllers.iter_mut() {
        let mut sim = Simulator::new(SimConfig::paper_default().with_seed(7));
        let report = sim.run_batch(controller.as_mut(), 25);
        assert_eq!(report.offered, 25, "{} lost requests", controller.name());
        assert_eq!(report.controller, controller.name());
    }
}

/// A seeded FACS-P run through the facade is fully deterministic and its
/// report round-trips losslessly through the workspace's serde wiring.
#[test]
fn facade_run_is_deterministic_and_serializable() {
    let run = || {
        let mut controller = FacsPController::paper_default();
        let mut sim = Simulator::new(SimConfig::paper_default().with_seed(4242));
        sim.run_batch(&mut controller, 40)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed must give identical reports");
    assert!(first.accepted > 0, "paper workload should admit something");

    let json = serde_json::to_string(&first).unwrap();
    let back: SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, first);
}

/// The admission server's world is reachable through the facade and
/// agrees with the engine it wraps: the same spec-built controller
/// admits through `World::process` exactly as many requests as the
/// batched path reports.
#[test]
fn prelude_exposes_the_admission_server_world() {
    let spec = ControllerSpec::FacsP;
    let world = World::new(&WorldConfig::paper_default(), &spec.label(), || {
        spec.build()
    });
    let frames = facs_suite::admitd::scenario::batch_frames(&SimConfig::paper_default(), 50, 0);
    let mut responses = Vec::new();
    world.process(&frames, &mut responses);
    assert_eq!(responses.len(), frames.len());
    let accepted = responses
        .iter()
        .filter(|r| r.status == facs_suite::admitd::wire::Status::Accept)
        .count();
    assert!(accepted > 0, "paper workload should admit something");
    assert!(world.occupied(0).unwrap() > 0);
}

/// The fuzzy substrate re-exported by the prelude is usable on its own:
/// the paper's FLC1 membership shapes can be rebuilt from scratch.
#[test]
fn prelude_exposes_the_fuzzy_substrate() {
    let variable = LinguisticVariable::builder("speed", 0.0, 120.0)
        .triangle("slow", 0.0, 0.0, 30.0)
        .triangle("middle", 20.0, 45.0, 70.0)
        .trapezoid("fast", 60.0, 90.0, 120.0, 120.0)
        .build()
        .unwrap();
    assert_eq!(variable.terms().len(), 3);

    let mf = MembershipFunction::triangular(0.0, 30.0, 60.0).unwrap();
    assert!((mf.membership(30.0) - 1.0).abs() < 1e-12);

    // The deterministic RNG the simulator uses is itself re-exported.
    let mut a = SimRng::new(99);
    let mut b = SimRng::new(99);
    assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}
