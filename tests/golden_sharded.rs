//! Sharded-vs-solo golden equivalence.
//!
//! The sharded engine's determinism contract (see `cellsim::shard`) is
//! that the [`ShardReport`] of a run is a pure function of the
//! [`SimConfig`] and the epoch length — the shard count and thread count
//! must never show through.  This test enforces the contract from two
//! directions:
//!
//! 1. **solo vs sharded**: for each pinned case, a 1-shard/1-thread run
//!    and several genuinely parallel shardings must produce byte-identical
//!    report JSON;
//! 2. **golden pinning**: the solo report is compared against a snapshot
//!    committed under `tests/golden/`, so an engine change that shifts any
//!    counter shows up as a reviewable diff (regenerate intentional
//!    changes with `UPDATE_GOLDEN=1`, mirroring `golden_snapshots.rs`).
//!
//! The pinned cases are the 19-cell `highway-handoff` workload (dense
//! cross-cell handoff traffic on a small grid), the 2107-cell `metro`
//! workload at its first load point (cross-shard migration at scale), the
//! `burst-groups` workload (correlated same-cell group arrivals), so the
//! contract is enforced under bursty, non-Poisson traffic too, and the
//! `outage-wave` workload (a rolling fault plan), so it is also enforced
//! while the fourth (fault) merge stream is live.

use facs_suite::prelude::*;
use std::path::PathBuf;

/// One pinned equivalence case.
struct Case {
    scenario: &'static str,
    /// Index into the scenario's controller list.
    controller: usize,
    /// Index into the scenario's load axis.
    load_index: usize,
    /// Non-trivial shardings that must all reproduce the solo run.
    shardings: &'static [(usize, usize)],
}

const CASES: &[Case] = &[
    Case {
        scenario: "highway-handoff",
        controller: 0, // FACS-P
        load_index: 2, // 2000 requests
        shardings: &[(2, 1), (5, 2), (19, 4)],
    },
    Case {
        scenario: "metro",
        controller: 1, // capacity threshold
        load_index: 0, // 200k requests
        shardings: &[(4, 2), (16, 4)],
    },
    Case {
        scenario: "burst-groups",
        controller: 0, // FACS-P
        load_index: 2, // 2000 requests
        shardings: &[(2, 1), (5, 2)],
    },
    Case {
        scenario: "outage-wave",
        controller: 0, // FACS-P
        load_index: 1, // 1000 requests
        shardings: &[(2, 1), (5, 2)],
    },
];

fn snapshot_path(scenario: &str, controller: &ControllerSpec) -> PathBuf {
    let label: String = controller
        .label()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("sharded__{scenario}__{label}.json"))
}

fn run_sharded(
    spec: &ScenarioSpec,
    controller: &ControllerSpec,
    load_index: usize,
    sharding: ShardConfig,
) -> ShardReport {
    let load = spec.load_points[load_index];
    let config = spec.sim_config(controller, load_index, 0);
    let mut sim = ShardedSimulator::new(config, sharding);
    let mut factory = || controller.build();
    sim.run_poisson(&mut factory, load)
}

#[test]
fn sharded_runs_are_bit_identical_to_solo_and_match_golden() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for case in CASES {
        let spec = builtin(case.scenario).expect("pinned scenarios are built-ins");
        let controller = spec.controllers[case.controller];
        let solo = run_sharded(&spec, &controller, case.load_index, ShardConfig::solo());
        let solo_json = serde_json::to_string_pretty(&solo).expect("reports serialize");

        assert!(
            solo.handoffs_offered > 0,
            "{}: the case must exercise handoffs to be meaningful",
            case.scenario
        );

        for &(shards, threads) in case.shardings {
            let sharded = run_sharded(
                &spec,
                &controller,
                case.load_index,
                ShardConfig::new(shards).with_threads(threads),
            );
            let sharded_json = serde_json::to_string_pretty(&sharded).expect("reports serialize");
            assert_eq!(
                solo_json, sharded_json,
                "{}: report must be bit-identical between solo and \
                 {shards} shards / {threads} threads",
                case.scenario
            );
        }

        let path = snapshot_path(case.scenario, &controller);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, format!("{solo_json}\n")).unwrap();
        } else {
            let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                    path.display()
                )
            });
            assert_eq!(
                expected.trim_end(),
                solo_json,
                "ShardReport for `{}` drifted from its golden snapshot {}; if the change \
                 is intentional, regenerate with UPDATE_GOLDEN=1",
                case.scenario,
                path.display()
            );
        }
    }
}

/// The metro case must actually be metro-scale: the pinned run itself
/// clears a six-figure concurrent population, and at the top load point
/// the same engine (exercised by the perf harness, not here, to keep
/// tier-1 fast) saturates past one million users.
#[test]
fn metro_case_reaches_scale() {
    let spec = builtin("metro").unwrap();
    let controller = spec.controllers[1];
    let report = run_sharded(&spec, &controller, 0, ShardConfig::new(4).with_threads(2));
    assert!(
        report.peak_concurrent_users > 100_000,
        "first metro load point must already hold >100k concurrent users, got {}",
        report.peak_concurrent_users
    );
    assert!(report.events_processed > 400_000);
}
