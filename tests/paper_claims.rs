//! Integration tests that pin the paper's qualitative claims (the shapes of
//! Figs. 7–10 and the conclusions of Section 5) using reduced versions of
//! the full experiment sweeps, so `cargo test --workspace` exercises the
//! same code paths the benches use without taking minutes.

use facs_suite::prelude::*;

/// Run one controller against `n` requesting connections arriving over the
/// experiment window, averaged over a few seeds.
fn acceptance(
    build: &dyn Fn() -> Box<dyn AdmissionController>,
    n: usize,
    handoff_fraction: f64,
    fixed_speed: Option<f64>,
    fixed_angle: Option<f64>,
    seeds: &[u64],
) -> f64 {
    let mut total = 0.0;
    for &seed in seeds {
        let mut traffic = TrafficConfig {
            mean_interarrival_s: 450.0 / n as f64,
            mean_holding_s: 180.0,
            handoff_fraction,
            direction_predictability: 1.0,
            ..TrafficConfig::paper_default()
        };
        if let Some(s) = fixed_speed {
            traffic = traffic.with_fixed_speed(s);
        }
        if let Some(a) = fixed_angle {
            traffic = traffic.with_fixed_angle(a);
        }
        let config = SimConfig::paper_default()
            .with_seed(seed)
            .with_traffic(traffic);
        let mut controller = build();
        let mut sim = Simulator::new(config);
        total += sim
            .run_poisson(controller.as_mut(), n)
            .acceptance_percentage;
    }
    total / seeds.len() as f64
}

const SEEDS: [u64; 12] = [11, 23, 37, 58, 71, 94, 105, 131, 160, 177, 203, 250];

fn facsp() -> Box<dyn AdmissionController> {
    Box::new(FacsPController::paper_default())
}
fn facs() -> Box<dyn AdmissionController> {
    Box::new(FacsController::paper_default())
}
fn scc_ctrl() -> Box<dyn AdmissionController> {
    Box::new(SccAdmission::new(SccConfig::paper_default()))
}

#[test]
fn fig7_facs_beats_scc_at_light_load() {
    // Paper, Fig. 7: "when the number of requesting connections is less
    // than 50, the percentage of accepted calls for [FACS] is higher than
    // SCC".
    let facs_light = acceptance(&facs, 30, 0.3, None, None, &SEEDS);
    let scc_light = acceptance(&scc_ctrl, 30, 0.3, None, None, &SEEDS);
    assert!(
        facs_light > scc_light,
        "FACS ({facs_light:.1}%) should beat SCC ({scc_light:.1}%) at 30 requests"
    );
}

#[test]
fn fig7_scc_beats_facs_at_heavy_load() {
    // Paper, Fig. 7: beyond ~50 requesting connections the proposed fuzzy
    // system accepts fewer connections than SCC (it protects on-going QoS).
    let facs_heavy = acceptance(&facs, 90, 0.3, None, None, &SEEDS);
    let scc_heavy = acceptance(&scc_ctrl, 90, 0.3, None, None, &SEEDS);
    assert!(
        scc_heavy > facs_heavy - 0.5,
        "SCC ({scc_heavy:.1}%) should accept at least as much as FACS ({facs_heavy:.1}%) at 90 requests"
    );
}

#[test]
fn fig8_acceptance_increases_with_user_speed() {
    // Paper, Fig. 8 / conclusion 1: "with the increase of the user speed,
    // the percentage of the number of the accepted calls is increased".
    let slow = acceptance(&facsp, 80, 0.0, Some(4.0), None, &SEEDS);
    let fast = acceptance(&facsp, 80, 0.0, Some(60.0), None, &SEEDS);
    assert!(
        fast >= slow,
        "60 km/h ({fast:.1}%) should be accepted at least as often as 4 km/h ({slow:.1}%)"
    );
}

#[test]
fn fig9_acceptance_decreases_with_user_angle() {
    // Paper, Fig. 9 / conclusion 3: small angles are accepted more often;
    // the acceptance decreases as the angle grows.
    let straight = acceptance(&facsp, 60, 0.0, None, Some(0.0), &SEEDS);
    let diagonal = acceptance(&facsp, 60, 0.0, None, Some(50.0), &SEEDS);
    let sideways = acceptance(&facsp, 60, 0.0, None, Some(90.0), &SEEDS);
    assert!(
        straight > diagonal,
        "angle 0 ({straight:.1}%) should beat angle 50 ({diagonal:.1}%)"
    );
    assert!(
        straight > sideways,
        "angle 0 ({straight:.1}%) should beat angle 90 ({sideways:.1}%)"
    );
}

#[test]
fn fig9_backward_users_are_accepted_less_than_straight_users() {
    // Paper: beyond 90° the acceptance keeps falling (the paper reports it
    // as "almost zero"; in this reproduction the drop is clear but not as
    // extreme, because Table 2 accepts every request while the cell is
    // lightly loaded regardless of the correction value — see
    // EXPERIMENTS.md for the discussion of this deviation).
    let backward = acceptance(&facsp, 60, 0.0, None, Some(150.0), &SEEDS);
    let straight = acceptance(&facsp, 60, 0.0, None, Some(0.0), &SEEDS);
    assert!(
        backward + 2.0 < straight,
        "heading-away users ({backward:.1}%) should be accepted clearly less than straight users ({straight:.1}%)"
    );
}

#[test]
fn fig10_facsp_accepts_fewer_new_connections_under_load_than_facs() {
    // Paper, Fig. 10: beyond ~25 requesting connections FACS-P accepts
    // fewer connections than FACS, because it protects the QoS of on-going
    // connections.
    let facsp_heavy = acceptance(&facsp, 60, 0.35, None, None, &SEEDS);
    let facs_heavy = acceptance(&facs, 60, 0.35, None, None, &SEEDS);
    assert!(
        facsp_heavy < facs_heavy,
        "FACS-P ({facsp_heavy:.1}%) should accept fewer than FACS ({facs_heavy:.1}%) under load"
    );
}

#[test]
fn conclusion_facsp_keeps_higher_qos_for_ongoing_connections() {
    // Paper, Section 5: "the proposed system keeps a higher QoS of on-going
    // connections".  Measured as in-simulation handoff treatment: in a
    // saturated multi-cell network FACS-P admits handoffs of on-going calls
    // at a higher rate than it admits new calls, and drops at most as many
    // admitted calls as the always-accept policy that performs no
    // protection at all.
    let mut cfg = SimConfig::paper_default()
        .with_seed(321)
        .with_grid_radius(1);
    cfg.cell_radius_m = 250.0;
    cfg.traffic = TrafficConfig {
        mean_interarrival_s: 1.5,
        mean_holding_s: 400.0,
        min_speed_kmh: 40.0,
        max_speed_kmh: 120.0,
        ..TrafficConfig::paper_default()
    };

    let mut facsp = FacsPController::paper_default();
    let mut sim = Simulator::new(cfg.clone());
    let facsp_report = sim.run_poisson(&mut facsp, 800);
    let (ho_offered, ho_accepted, _) = facsp_report.metrics.handoffs();
    assert!(ho_offered > 20);
    let handoff_rate = ho_accepted as f64 / ho_offered as f64;
    let new_offered = facsp_report.offered - ho_offered;
    let new_rate = (facsp_report.accepted - ho_accepted) as f64 / new_offered as f64;
    assert!(
        handoff_rate > new_rate,
        "FACS-P should prioritise on-going connections: handoff rate {handoff_rate:.3} vs new-call rate {new_rate:.3}"
    );
}

#[test]
fn priority_ablation_changes_behaviour_under_load() {
    // Disabling the priority policy must make FACS-P behave like the plain
    // FLC1/FLC2 cascade: it accepts at least as many new connections under
    // load (nothing is reserved for on-going calls any more).
    let with_priority = acceptance(&facsp, 70, 0.3, None, None, &SEEDS);
    let without: Box<dyn Fn() -> Box<dyn AdmissionController>> = Box::new(|| {
        Box::new(
            FacsPController::new(FacsPConfig::paper_default().without_priority())
                .expect("valid config"),
        )
    });
    let without_priority = acceptance(&without, 70, 0.3, None, None, &SEEDS);
    assert!(
        without_priority >= with_priority,
        "disabling priority ({without_priority:.1}%) should not accept fewer than the default ({with_priority:.1}%)"
    );
}
