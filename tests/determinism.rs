//! Reproducibility guarantees: identical seeds give identical results all
//! the way through the stack, and different seeds actually vary.

use facs_suite::prelude::*;

fn run_once(seed: u64, n: usize) -> SimReport {
    let mut controller = FacsPController::paper_default();
    let mut sim = Simulator::new(SimConfig::paper_default().with_seed(seed));
    sim.run_batch(&mut controller, n)
}

#[test]
fn identical_seeds_identical_reports() {
    let a = run_once(2024, 80);
    let b = run_once(2024, 80);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ_somewhere() {
    let reports: Vec<SimReport> = (0..8).map(|s| run_once(s, 80)).collect();
    let first = &reports[0];
    assert!(
        reports.iter().any(|r| r.accepted != first.accepted
            || r.metrics.bandwidth_admitted() != first.metrics.bandwidth_admitted()),
        "eight different seeds should not all produce identical outcomes"
    );
}

#[test]
fn traffic_generation_is_stable_across_runs() {
    let make = || TrafficGenerator::new(TrafficConfig::paper_default(), 555).generate_poisson(300);
    assert_eq!(make(), make());
}

#[test]
fn poisson_multicell_runs_are_reproducible() {
    let run = || {
        let mut cfg = SimConfig::paper_default().with_seed(77).with_grid_radius(1);
        cfg.cell_radius_m = 300.0;
        cfg.traffic.mean_interarrival_s = 2.0;
        let mut controller = FacsController::paper_default();
        let mut sim = Simulator::new(cfg);
        let report = sim.run_poisson(&mut controller, 400);
        (
            report.accepted,
            report.metrics.dropped(),
            report.metrics.handoffs(),
        )
    };
    assert_eq!(run(), run());
}

/// A full multi-cell `run_poisson` — mobility, handoffs, utilisation
/// sampling — must reproduce the *entire* report (every counter, every
/// sample) from its seed, not just the headline numbers.
#[test]
fn poisson_multicell_full_reports_are_identical() {
    let run = || {
        let mut cfg = SimConfig::paper_default()
            .with_seed(0xDE7E)
            .with_grid_radius(2)
            .with_cell_radius(300.0)
            .with_utilization_sampling(30.0);
        cfg.traffic.mean_interarrival_s = 2.0;
        cfg.traffic.mean_holding_s = 400.0;
        cfg.traffic.min_speed_kmh = 50.0;
        cfg.traffic.max_speed_kmh = 120.0;
        let mut controller = FacsPController::paper_default();
        let mut sim = Simulator::new(cfg);
        sim.run_poisson(&mut controller, 500)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "full SimReport must be bit-identical");
    let (handoffs_offered, _, _) = a.metrics.handoffs();
    assert!(handoffs_offered > 0, "the scenario must exercise handoffs");
    assert!(!a.metrics.utilization_samples().is_empty());
}

/// The sweep engine's headline guarantee: the aggregated report of a
/// scenario is bit-identical no matter how many worker threads run it.
#[test]
fn sweep_runner_aggregates_identical_at_1_2_4_threads() {
    let spec = builtin("paper-default")
        .expect("paper-default is built in")
        .quick()
        .with_controllers(vec![ControllerSpec::FacsP, ControllerSpec::Scc]);
    let one = SweepRunner::with_threads(1).run(&spec).unwrap();
    let two = SweepRunner::with_threads(2).run(&spec).unwrap();
    let four = SweepRunner::with_threads(4).run(&spec).unwrap();
    assert_eq!(one, two, "1 vs 2 worker threads");
    assert_eq!(two, four, "2 vs 4 worker threads");
    assert!(!one.is_empty());
    // The aggregates really carry data: every point averaged the spec's
    // replication count.
    for curve in &one.curves {
        for point in &curve.points {
            assert_eq!(point.acceptance.n as usize, spec.replications);
        }
    }
}

#[test]
fn fuzzy_inference_is_a_pure_function() {
    let flc1 = Flc1::paper_default().unwrap();
    let flc2 = Flc2::paper_default().unwrap();
    for _ in 0..5 {
        assert_eq!(
            flc1.correction_value(42.0, -30.0, 5.0),
            flc1.correction_value(42.0, -30.0, 5.0)
        );
        assert_eq!(
            flc2.decision_value(0.61, 5.0, 27.0),
            flc2.decision_value(0.61, 5.0, 27.0)
        );
    }
}
