//! Golden-snapshot pinning of the simulation engine.
//!
//! Every built-in scenario × controller is run once at a fixed seed (the
//! scenario's own `seed_for` derivation, replication 0, middle load point)
//! and the full `SimReport` — every counter, every utilisation sample,
//! every derived ratio — is compared byte-for-byte against a JSON snapshot
//! committed under `tests/golden/`.
//!
//! The snapshots were captured on the pre-dense-state engine (`HashMap`
//! stations/users/connections, heap-owned events); the arena/slab engine
//! must reproduce them **bit-identically**.  Any storage or event-loop
//! change that alters a single decision, RNG draw, or sample shows up here
//! as a diff, not as a silent drift of the paper's figures.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_snapshots
//! ```

use facs_suite::prelude::*;
use std::path::PathBuf;

/// The controllers pinned for every scenario: the scenario's own list plus
/// the LUT backend (no built-in scenario sweeps it, but its decisions must
/// stay pinned too).
fn pinned_controllers(spec: &ScenarioSpec) -> Vec<ControllerSpec> {
    let mut controllers = spec.controllers.clone();
    if !controllers.contains(&ControllerSpec::FacsPLut) {
        controllers.push(ControllerSpec::FacsPLut);
    }
    controllers
}

/// One snapshot cell: the scenario's middle load point, replication 0.
fn run_cell(spec: &ScenarioSpec, controller: &ControllerSpec) -> SimReport {
    let load_index = spec.load_points.len() / 2;
    let load = spec.load_points[load_index];
    let mut boxed = controller.build();
    let mut sim = Simulator::new(spec.sim_config(controller, load_index, 0));
    match spec.load_mode {
        LoadMode::Batch => sim.run_batch(boxed.as_mut(), load),
        LoadMode::RequestsPerWindow { .. } | LoadMode::TotalRequests => {
            sim.run_poisson(boxed.as_mut(), load)
        }
    }
}

fn snapshot_path(scenario: &str, controller: &ControllerSpec) -> PathBuf {
    let label: String = controller
        .label()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{scenario}__{label}.json"))
}

#[test]
fn sim_reports_match_committed_golden_snapshots() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut checked = 0;
    for name in builtin_names() {
        let spec = builtin(name).expect("builtin_names lists only builtins");
        for controller in pinned_controllers(&spec) {
            let report = run_cell(&spec, &controller);
            let json = serde_json::to_string_pretty(&report).expect("reports serialize");
            let path = snapshot_path(name, &controller);
            if update {
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, format!("{json}\n")).unwrap();
            } else {
                let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    panic!(
                        "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                        path.display()
                    )
                });
                assert_eq!(
                    expected.trim_end(),
                    json,
                    "SimReport for scenario `{name}` × controller `{}` drifted from its \
                     golden snapshot {}; if the change is intentional, regenerate with \
                     UPDATE_GOLDEN=1",
                    controller.label(),
                    path.display()
                );
            }
            checked += 1;
        }
    }
    // 5 scenarios × (3..=4 own controllers + FACS-P-LUT).
    assert!(checked >= 20, "expected at least 20 snapshot cells");
}

/// The snapshot harness itself must be deterministic: running a cell twice
/// gives byte-identical JSON (guards against accidental nondeterminism in
/// the harness masking real engine drift).
#[test]
fn snapshot_cells_are_reproducible() {
    let spec = builtin("highway-handoff").unwrap();
    let controller = ControllerSpec::FacsP;
    let a = serde_json::to_string(&run_cell(&spec, &controller)).unwrap();
    let b = serde_json::to_string(&run_cell(&spec, &controller)).unwrap();
    assert_eq!(a, b);
}
