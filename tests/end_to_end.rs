//! Cross-crate integration tests: the fuzzy engine, the simulator, the
//! baselines and the FACS/FACS-P controllers working together through the
//! public facade API.

use facs_suite::prelude::*;

#[test]
fn facsp_full_pipeline_on_paper_workload() {
    let mut controller = FacsPController::paper_default();
    let mut sim = Simulator::new(SimConfig::paper_default().with_seed(101));
    let report = sim.run_batch(&mut controller, 100);

    assert_eq!(report.offered, 100);
    assert!(report.accepted > 0 && report.accepted < 100);
    assert!(report.acceptance_percentage > 0.0 && report.acceptance_percentage < 100.0);
    // Metric bookkeeping is consistent.
    assert_eq!(report.offered, report.accepted + report.metrics.blocked());
    // The physical capacity is never violated, and because every request in
    // a batch run arrives at t = 0 (nothing departs), the occupied bandwidth
    // equals the admitted bandwidth.
    let station = sim.station(&CellId::origin()).unwrap();
    assert!(station.occupied() <= station.capacity());
    assert_eq!(
        u64::from(station.occupied()),
        report.metrics.bandwidth_admitted()
    );
}

#[test]
fn all_controllers_respect_capacity_on_the_same_sequence() {
    let traffic = TrafficConfig {
        mean_interarrival_s: 5.0,
        handoff_fraction: 0.25,
        ..TrafficConfig::paper_default()
    };
    let mut generator = TrafficGenerator::new(traffic, 777);
    let requests = generator.generate_poisson(200);

    let mut controllers: Vec<Box<dyn AdmissionController>> = vec![
        Box::new(FacsPController::paper_default()),
        Box::new(FacsController::paper_default()),
        Box::new(SccAdmission::new(SccConfig::paper_default())),
        Box::new(AlwaysAccept),
        Box::new(CapacityThreshold::default()),
    ];
    for controller in controllers.iter_mut() {
        let mut sim = Simulator::new(SimConfig::paper_default().with_seed(9));
        sim.offer_requests(controller.as_mut(), &requests);
        let station = sim.station(&CellId::origin()).unwrap();
        assert!(
            station.occupied() <= station.capacity(),
            "{} violated capacity",
            controller.name()
        );
        assert_eq!(sim.metrics().offered(), 200);
    }
}

#[test]
fn multicell_simulation_conserves_connections() {
    let mut cfg = SimConfig::paper_default().with_seed(4).with_grid_radius(2);
    cfg.cell_radius_m = 400.0;
    cfg.traffic.mean_interarrival_s = 3.0;
    cfg.traffic.mean_holding_s = 300.0;
    cfg.traffic.min_speed_kmh = 30.0;
    let mut controller = FacsPController::paper_default();
    let mut sim = Simulator::new(cfg);
    let report = sim.run_poisson(&mut controller, 500);

    // Every offered request is either accepted or blocked.
    assert_eq!(report.offered, report.accepted + report.metrics.blocked());
    // Each successful handoff re-admits an existing connection, so the
    // number of *distinct* admitted connections is `accepted` minus the
    // accepted handoffs; every one of them either completed, was dropped,
    // or is still active somewhere in the grid.
    let (_, handoffs_accepted, _) = report.metrics.handoffs();
    let still_active: u64 = sim
        .grid()
        .cells()
        .iter()
        .map(|c| sim.station(c).unwrap().active_connections() as u64)
        .sum();
    assert_eq!(
        report.accepted - handoffs_accepted,
        report.metrics.completed() + report.metrics.dropped() + still_active
    );
    // No station is over capacity.
    for cell in sim.grid().cells() {
        let s = sim.station(cell).unwrap();
        assert!(s.occupied() <= s.capacity());
    }
}

#[test]
fn custom_fuzzy_controller_plugs_into_the_simulator() {
    // Build a tiny custom fuzzy admission controller directly from the
    // `fuzzy` crate to show the substrate is reusable beyond FACS.
    struct TinyFuzzyCac {
        engine: MamdaniEngine,
    }
    impl AdmissionController for TinyFuzzyCac {
        fn name(&self) -> &'static str {
            "tiny-fuzzy"
        }
        fn decide(
            &mut self,
            request: &AdmissionRequest,
            station: &BaseStation,
        ) -> AdmissionDecision {
            let load = f64::from(station.occupied());
            let score = self
                .engine
                .infer(&[load, f64::from(request.bandwidth)])
                .map(|o| o.crisp_or("decision", 0.0))
                .unwrap_or(0.0);
            if score > 0.5 {
                AdmissionDecision::accept(score)
            } else {
                AdmissionDecision::reject(score)
            }
        }
    }

    let load = LinguisticVariable::builder("load", 0.0, 40.0)
        .triangle("low", 0.0, 0.0, 30.0)
        .triangle("high", 20.0, 40.0, 40.0)
        .build()
        .unwrap();
    let size = LinguisticVariable::builder("size", 0.0, 10.0)
        .triangle("small", 0.0, 0.0, 10.0)
        .triangle("large", 0.0, 10.0, 10.0)
        .build()
        .unwrap();
    let decision = LinguisticVariable::builder("decision", 0.0, 1.0)
        .triangle("no", 0.0, 0.0, 0.6)
        .triangle("yes", 0.4, 1.0, 1.0)
        .build()
        .unwrap();
    let mut engine = MamdaniEngine::builder()
        .input(load)
        .input(size)
        .output(decision)
        .build()
        .unwrap();
    engine
        .add_rules_str([
            "IF load IS low THEN decision IS yes",
            "IF load IS high AND size IS large THEN decision IS no",
            "IF load IS high AND size IS small THEN decision IS no",
        ])
        .unwrap();

    let mut controller = TinyFuzzyCac { engine };
    let mut sim = Simulator::new(SimConfig::paper_default().with_seed(55));
    let report = sim.run_batch(&mut controller, 60);
    assert!(report.accepted > 0);
    assert!(report.accepted < 60);
    assert_eq!(report.controller, "tiny-fuzzy");
}

#[test]
fn reports_serialize_to_json() {
    let mut controller = FacsPController::paper_default();
    let mut sim = Simulator::new(SimConfig::paper_default().with_seed(2));
    let report = sim.run_batch(&mut controller, 20);
    let json = serde_json::to_string(&report).unwrap();
    let back: SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}
