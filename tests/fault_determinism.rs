//! Property tests for the fault-injection determinism contract
//! (`cellsim::fault`): random plans must interleave in the engines'
//! total `(time, connection_id, rank)` merge order, and a faulted run
//! must stay byte-identical across shardings — not just for the pinned
//! `outage-wave` golden, but for arbitrary seeded plans.

use facs_suite::prelude::*;

use cellsim::shard::{RANK_ADMIT, RANK_HANDOFF, RANK_RELEASE};
use cellsim::MergeKey;

/// A random but valid plan: outages, degradations and point events
/// scattered over `cells` cells within `[0, horizon)` seconds.
fn random_plan(seed: u64, cells: u32, horizon: f64) -> FaultPlan {
    let mut rng = SimRng::new(seed).derive(0xFA_17);
    let mut plan = FaultPlan::new();
    for _ in 0..rng.uniform_u32(1, 6) {
        let cell = rng.uniform_u32(0, cells - 1);
        let start = rng.uniform(0.0, horizon * 0.8);
        let duration = rng.uniform(horizon * 0.01, horizon * 0.2);
        if rng.chance(0.5) {
            plan = plan.with_outage(cell, start, duration);
        } else {
            plan = plan.with_degrade(cell, start, duration, rng.uniform(0.1, 0.9));
        }
    }
    // A couple of events that never pair up, including simultaneous
    // faults on distinct cells — the order must still be total.
    let t = rng.uniform(0.0, horizon);
    plan = plan
        .with_event(t, rng.uniform_u32(0, cells - 1), FaultKind::Outage)
        .with_event(t, rng.uniform_u32(0, cells - 1), FaultKind::Recovery);
    plan
}

/// Every random plan sorts into a non-decreasing sequence of merge
/// keys, and each fault key orders strictly after any real
/// connection's work at the same instant (faults borrow a synthetic
/// connection id above `1 << 63`, a range no live call occupies).
#[test]
fn random_plans_interleave_in_total_merge_order() {
    for seed in 0..200u64 {
        let plan = random_plan(seed, 30, 5_000.0);
        plan.validate().unwrap_or_else(|e| {
            panic!("seed {seed}: generated plan must be valid: {e}");
        });
        let events = plan.sorted_events();
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(
                pair[0].merge_key() <= pair[1].merge_key(),
                "seed {seed}: sorted_events out of merge order: {pair:?}"
            );
        }
        for event in &events {
            let key = event.merge_key();
            assert!(
                key.connection_id >= 1 << 63,
                "seed {seed}: fault key must use the reserved id range"
            );
            // Any real connection's release/admit/handoff at the same
            // time must order before the fault — the engines apply a
            // cell's in-flight work before the cell changes state.
            for rank in [RANK_RELEASE, RANK_ADMIT, RANK_HANDOFF] {
                let real = MergeKey::new(event.time, (1 << 63) - 1, rank);
                assert!(real < key, "seed {seed}: fault preempted a connection");
            }
        }
    }
}

/// Ties at one instant break by cell index, then declaration order —
/// never by anything ambient.
#[test]
fn simultaneous_faults_order_by_cell_then_declaration() {
    let plan = FaultPlan::new()
        .with_event(10.0, 7, FaultKind::Outage)
        .with_event(10.0, 2, FaultKind::Outage)
        .with_event(10.0, 7, FaultKind::Recovery)
        .with_event(5.0, 9, FaultKind::Restore);
    let events = plan.sorted_events();
    let order: Vec<(f64, u32, bool)> = events
        .iter()
        .map(|e| (e.time, e.cell, e.kind == FaultKind::Outage))
        .collect();
    assert_eq!(
        order,
        vec![
            (5.0, 9, false),
            (10.0, 2, true),
            (10.0, 7, true), // declared first, so it stays first
            (10.0, 7, false),
        ]
    );
}

fn run_with_plan(spec: &ScenarioSpec, plan: &FaultPlan, sharding: ShardConfig) -> ShardReport {
    let controller = spec.controllers[0];
    let mut config = spec.sim_config(&controller, 1, 0);
    config.fault_plan = plan.clone();
    let mut sim = ShardedSimulator::new(config, sharding);
    let mut factory = || controller.build();
    sim.run_poisson(&mut factory, spec.load_points[1])
}

/// The sharding-invariance contract holds for *arbitrary* seeded
/// plans, not only the pinned golden: solo and parallel runs of the
/// same random plan are byte-identical, and at least one plan must
/// actually drop connections so the test cannot pass vacuously.
#[test]
fn random_fault_plans_are_sharding_invariant() {
    let spec = builtin("highway-handoff").expect("built-in scenario");
    let cells = 19;
    let mut any_dropped = 0u64;
    for seed in [11u64, 23, 47] {
        let plan = random_plan(seed, cells, 2_000.0);
        let solo = run_with_plan(&spec, &plan, ShardConfig::solo());
        any_dropped += solo.dropped_by_outage;
        let solo_json = serde_json::to_string_pretty(&solo).expect("serialize");
        for (shards, threads) in [(2, 1), (5, 2), (19, 4)] {
            let sharded =
                run_with_plan(&spec, &plan, ShardConfig::new(shards).with_threads(threads));
            let sharded_json = serde_json::to_string_pretty(&sharded).expect("serialize");
            assert_eq!(
                solo_json, sharded_json,
                "seed {seed}: faulted run must not depend on \
                 {shards} shards / {threads} threads"
            );
        }
    }
    assert!(
        any_dropped > 0,
        "the random plans must force-drop some connections somewhere"
    );
}

/// Faults naming cells outside the grid are ignored, so one plan can be
/// reused across grid sizes without changing results on the smaller
/// grid.
#[test]
fn out_of_grid_faults_change_nothing() {
    let spec = builtin("highway-handoff").expect("built-in scenario");
    let healthy = run_with_plan(
        &spec,
        &FaultPlan::new(),
        ShardConfig::new(5).with_threads(2),
    );
    let phantom = FaultPlan::new()
        .with_outage(400, 10.0, 500.0)
        .with_degrade(9_999, 1.0, 100.0, 0.25);
    let faulted = run_with_plan(&spec, &phantom, ShardConfig::new(5).with_threads(2));
    assert_eq!(
        serde_json::to_string_pretty(&healthy).unwrap(),
        serde_json::to_string_pretty(&faulted).unwrap(),
        "out-of-grid faults must be inert"
    );
}
